// Scalar/batched equivalence property: the range and gather fast paths of
// MemoryHierarchy are pure fusions of the scalar entry points, so a subject
// hierarchy driven with ReadRange/WriteRange/DmaWriteRange/DmaReadRange must
// stay bit-identical — per-line AccessResults, summed cycles, HierarchyStats
// and per-slice CBo counters — to a reference hierarchy (same spec, hash and
// seed) fed the equivalent scalar call per line. Randomized streams cover
// contiguous ranges, scattered gathers with duplicates, DMA rings that wrap
// the DDIO partition, interleaved scalar traffic and flushes, on both the
// inclusive (Haswell) and victim (Skylake) organisations.
#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/cache/hierarchy.h"
#include "src/hash/presets.h"
#include "src/sim/machine.h"
#include "src/sim/rng.h"

namespace cachedir {
namespace {

// Shrunken LLC (as in hotpath_alloc_test): eviction and back-invalidation
// chains start after a few thousand lines, so the streams below reach them.
MachineSpec WithSmallLlc(MachineSpec spec) {
  spec.llc_slice.size_bytes = 128 * spec.llc_slice.ways * kCacheLineSize;  // 128 sets
  return spec;
}

constexpr std::size_t kMaxBatchLines = 64;

class BatchEquivalenceTest : public ::testing::TestWithParam<MachineSpec (*)()> {
 protected:
  void SetUp() override {
    spec_ = WithSmallLlc(GetParam()());
    hash_ = spec_.inclusion == LlcInclusionPolicy::kInclusive ? HaswellSliceHash()
                                                              : SkylakeSliceHash();
    reference_ = std::make_unique<MemoryHierarchy>(spec_, hash_, /*seed=*/11);
    subject_ = std::make_unique<MemoryHierarchy>(spec_, hash_, /*seed=*/11);
  }

  // Every simulated outcome the two hierarchies expose must agree.
  void ExpectConverged() {
    ASSERT_EQ(reference_->stats(), subject_->stats());
    for (SliceId s = 0; s < spec_.num_slices; ++s) {
      ASSERT_EQ(reference_->llc().cbo().events(s), subject_->llc().cbo().events(s))
          << "CBo counters diverged on slice " << s;
    }
  }

  // Applies one contiguous core batch to the subject and the equivalent
  // scalar per-line calls to the reference; checks per-line results, the
  // aggregate, and the line count.
  void RunContiguous(CoreId core, PhysAddr addr, std::size_t bytes, bool is_write) {
    const PhysAddr first = LineBase(addr);
    const PhysAddr last = LineBase(addr + (bytes == 0 ? 0 : bytes - 1));

    Cycles scalar_cycles = 0;
    std::size_t scalar_lines = 0;
    std::array<AccessResult, kMaxBatchLines> expected{};
    for (PhysAddr line = first; line <= last; line += kCacheLineSize) {
      const AccessResult r =
          is_write ? reference_->Write(core, line) : reference_->Read(core, line);
      ASSERT_LT(scalar_lines, kMaxBatchLines);
      expected[scalar_lines++] = r;
      scalar_cycles += r.cycles;
    }

    AccessBatch batch;
    batch.addr = addr;
    batch.bytes = bytes;
    batch.per_line = std::span<AccessResult>(per_line_.data(), per_line_.size());
    const BatchResult got = is_write ? subject_->WriteRange(core, batch)
                                     : subject_->ReadRange(core, batch);

    ASSERT_EQ(got.lines, scalar_lines);
    ASSERT_EQ(got.cycles, scalar_cycles);
    for (std::size_t i = 0; i < scalar_lines; ++i) {
      ASSERT_EQ(per_line_[i], expected[i]) << "per-line result " << i << " diverged";
    }
  }

  // Applies one gather batch (scattered addresses, duplicates allowed, in
  // order) the same way.
  void RunGather(CoreId core, std::span<const PhysAddr> addrs, bool is_write) {
    Cycles scalar_cycles = 0;
    std::array<AccessResult, kMaxBatchLines> expected{};
    for (std::size_t i = 0; i < addrs.size(); ++i) {
      const AccessResult r =
          is_write ? reference_->Write(core, addrs[i]) : reference_->Read(core, addrs[i]);
      expected[i] = r;
      scalar_cycles += r.cycles;
    }

    AccessBatch batch;
    batch.gather = addrs;
    batch.per_line = std::span<AccessResult>(per_line_.data(), per_line_.size());
    const BatchResult got = is_write ? subject_->WriteRange(core, batch)
                                     : subject_->ReadRange(core, batch);

    ASSERT_EQ(got.lines, addrs.size());
    ASSERT_EQ(got.cycles, scalar_cycles);
    for (std::size_t i = 0; i < addrs.size(); ++i) {
      ASSERT_EQ(per_line_[i], expected[i]) << "gather result " << i << " diverged";
    }
  }

  void RunDmaWrite(PhysAddr addr, std::size_t bytes) {
    const PhysAddr first = LineBase(addr);
    const PhysAddr last = LineBase(addr + (bytes == 0 ? 0 : bytes - 1));
    Cycles scalar_cycles = 0;
    for (PhysAddr line = first; line <= last; line += kCacheLineSize) {
      scalar_cycles += reference_->DmaWriteLine(line);
    }
    ASSERT_EQ(subject_->DmaWriteRange(addr, bytes), scalar_cycles);
  }

  void RunDmaRead(PhysAddr addr, std::size_t bytes) {
    const PhysAddr first = LineBase(addr);
    const PhysAddr last = LineBase(addr + (bytes == 0 ? 0 : bytes - 1));
    Cycles scalar_cycles = 0;
    for (PhysAddr line = first; line <= last; line += kCacheLineSize) {
      scalar_cycles += reference_->DmaReadLine(line);
    }
    ASSERT_EQ(subject_->DmaReadRange(addr, bytes), scalar_cycles);
  }

  // Identical scalar traffic on both — the batched paths must compose with
  // the scalar ones, not just replay in isolation.
  void RunScalarOnBoth(CoreId core, PhysAddr addr, bool is_write) {
    const AccessResult ref =
        is_write ? reference_->Write(core, addr) : reference_->Read(core, addr);
    const AccessResult sub =
        is_write ? subject_->Write(core, addr) : subject_->Read(core, addr);
    ASSERT_EQ(ref, sub);
  }

  MachineSpec spec_;
  std::shared_ptr<const SliceHash> hash_;
  std::unique_ptr<MemoryHierarchy> reference_;
  std::unique_ptr<MemoryHierarchy> subject_;
  std::array<AccessResult, kMaxBatchLines> per_line_{};
};

TEST_P(BatchEquivalenceTest, RandomizedStreamsStayBitIdentical) {
  Rng rng(1234);
  const std::size_t cores = spec_.num_cores;
  // Regions sized against the shrunken LLC so DMA wraps the DDIO ways and
  // demand misses run the full eviction chains.
  const std::size_t llc_lines =
      spec_.num_slices * spec_.llc_slice.num_sets() * spec_.llc_slice.ways;
  const PhysAddr ring = PhysAddr{1} << 30;
  const std::size_t ring_bytes = llc_lines * 4 * kCacheLineSize;
  const PhysAddr heap = PhysAddr{1} << 28;
  const std::size_t heap_bytes = llc_lines * 2 * kCacheLineSize;

  std::vector<PhysAddr> gather;
  gather.reserve(kMaxBatchLines);
  for (int step = 0; step < 4000; ++step) {
    const CoreId core = static_cast<CoreId>(rng.UniformIndex(cores));
    switch (rng.UniformIndex(8)) {
      case 0:   // contiguous read, packet-sized
      case 1: {
        const PhysAddr addr = heap + rng.UniformIndex(heap_bytes);
        RunContiguous(core, addr, rng.UniformIndex(1536), /*is_write=*/false);
        break;
      }
      case 2: {  // contiguous write
        const PhysAddr addr = heap + rng.UniformIndex(heap_bytes);
        RunContiguous(core, addr, rng.UniformIndex(1536), /*is_write=*/true);
        break;
      }
      case 3: {  // scattered gather (duplicates allowed), read or write
        gather.clear();
        const std::size_t n = 1 + rng.UniformIndex(32);
        for (std::size_t i = 0; i < n; ++i) {
          gather.push_back(heap + rng.UniformIndex(heap_bytes));
        }
        RunGather(core, gather, /*is_write=*/rng.Bernoulli(0.5));
        break;
      }
      case 4: {  // NIC RX: DMA a packet into the ring
        const PhysAddr addr = ring + rng.UniformIndex(ring_bytes);
        RunDmaWrite(addr, 64 + rng.UniformIndex(1536 - 64));
        break;
      }
      case 5: {  // NIC TX: DMA-read a span back out
        const PhysAddr addr = ring + rng.UniformIndex(ring_bytes);
        RunDmaRead(addr, 64 + rng.UniformIndex(1536 - 64));
        break;
      }
      case 6: {  // scalar traffic interleaved identically on both
        const PhysAddr addr = heap + rng.UniformIndex(heap_bytes);
        RunScalarOnBoth(core, addr, /*is_write=*/rng.Bernoulli(0.3));
        break;
      }
      case 7: {  // flush a line on both
        const PhysAddr addr = heap + rng.UniformIndex(heap_bytes);
        reference_->FlushLine(addr);
        subject_->FlushLine(addr);
        break;
      }
      default:
        break;
    }
    if ((step & 255) == 255) {
      ExpectConverged();
    }
  }
  ExpectConverged();
}

// Degenerate batches: zero bytes still touches the single line containing
// `addr` (matching the scalar DmaWrite convention), and an empty gather with
// per_line storage is a no-op.
TEST_P(BatchEquivalenceTest, ZeroByteRangeTouchesOneLine) {
  const PhysAddr addr = (PhysAddr{1} << 26) + 17;  // unaligned on purpose
  RunContiguous(/*core=*/0, addr, /*bytes=*/0, /*is_write=*/false);
  RunContiguous(/*core=*/0, addr, /*bytes=*/0, /*is_write=*/true);
  RunDmaWrite(addr, 0);
  RunDmaRead(addr, 0);
  ExpectConverged();
}

TEST_P(BatchEquivalenceTest, PerLineStorageShorterThanBatchIsTruncated) {
  // per_line holds 4 results; the range spans 8 lines. The first 4 are
  // written, the batch still runs in full.
  const PhysAddr addr = PhysAddr{1} << 27;
  const std::size_t bytes = 8 * kCacheLineSize;

  Cycles scalar_cycles = 0;
  std::array<AccessResult, 8> expected{};
  for (std::size_t i = 0; i < 8; ++i) {
    expected[i] = reference_->Read(0, addr + i * kCacheLineSize);
    scalar_cycles += expected[i].cycles;
  }

  std::array<AccessResult, 4> small{};
  AccessBatch batch;
  batch.addr = addr;
  batch.bytes = bytes;
  batch.per_line = small;
  const BatchResult got = subject_->ReadRange(0, batch);
  ASSERT_EQ(got.lines, 8u);
  ASSERT_EQ(got.cycles, scalar_cycles);
  for (std::size_t i = 0; i < small.size(); ++i) {
    ASSERT_EQ(small[i], expected[i]);
  }
  ExpectConverged();
}

INSTANTIATE_TEST_SUITE_P(Machines, BatchEquivalenceTest,
                         ::testing::Values(&HaswellXeonE52667V3, &SkylakeXeonGold6134),
                         [](const auto& param_info) {
                           return param_info.param == &HaswellXeonE52667V3
                                      ? std::string("HaswellInclusive")
                                      : std::string("SkylakeVictim");
                         });

}  // namespace
}  // namespace cachedir
