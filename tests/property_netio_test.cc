// Property tests of the net-I/O substrate: mempool alloc/free against a
// reference model, NIC FIFO ordering per queue, RSS distribution quality,
// and runtime causality invariants.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <unordered_set>
#include <vector>

#include "src/hash/presets.h"
#include "src/netio/nic.h"
#include "src/netio/sorted_mempool.h"
#include "src/nfv/chain.h"
#include "src/nfv/elements.h"
#include "src/nfv/runtime.h"
#include "src/sim/machine.h"
#include "src/slice/placement.h"
#include "src/trace/traffic_gen.h"

namespace cachedir {
namespace {

struct NetioEnv {
  MemoryHierarchy hierarchy{HaswellXeonE52667V3(), HaswellSliceHash(), 1};
  SlicePlacement placement{hierarchy};
  PhysicalMemory memory;
  HugepageAllocator backing;
  CacheDirector director{HaswellSliceHash(), placement, true};
};

class MempoolModelCheck : public ::testing::TestWithParam<int> {};

TEST_P(MempoolModelCheck, AllocFreeNeverDuplicatesOrLeaks) {
  NetioEnv env;
  const std::size_t capacity = 64 + GetParam() * 37;
  Mempool pool(env.backing, capacity, env.director);
  std::unordered_set<Mbuf*> outstanding;
  // Free order is drawn from the seeded rng (not hash-table iteration order,
  // which depends on pointer values) so reruns replay the same schedule.
  std::vector<Mbuf*> order;
  Rng rng(GetParam());
  for (int step = 0; step < 20000; ++step) {
    if (rng.Bernoulli(0.55)) {
      Mbuf* m = pool.Alloc();
      if (outstanding.size() == capacity) {
        ASSERT_EQ(m, nullptr) << "allocated beyond capacity";
      } else {
        ASSERT_NE(m, nullptr);
        ASSERT_TRUE(outstanding.insert(m).second) << "double allocation";
        order.push_back(m);
      }
    } else if (!outstanding.empty()) {
      const std::size_t victim = rng.UniformIndex(order.size());
      Mbuf* m = order[victim];
      order[victim] = order.back();
      order.pop_back();
      outstanding.erase(m);
      pool.Free(m);
    }
    ASSERT_EQ(pool.available(), capacity - outstanding.size());
  }
}

TEST_P(MempoolModelCheck, SortedPoolSetSameInvariants) {
  NetioEnv env;
  const std::size_t capacity = 64 + GetParam() * 37;
  SortedMempoolSet pools(env.backing, capacity, HaswellSliceHash(), env.placement);
  std::unordered_set<Mbuf*> outstanding;
  // Seeded-rng free order, as above: reruns must replay the same schedule.
  std::vector<Mbuf*> order;
  Rng rng(100 + GetParam());
  for (int step = 0; step < 20000; ++step) {
    if (rng.Bernoulli(0.55)) {
      Mbuf* m = pools.AllocFor(static_cast<CoreId>(rng.UniformIndex(8)));
      if (outstanding.size() == capacity) {
        ASSERT_EQ(m, nullptr);
      } else {
        ASSERT_NE(m, nullptr);
        ASSERT_TRUE(outstanding.insert(m).second);
        order.push_back(m);
      }
    } else if (!outstanding.empty()) {
      const std::size_t victim = rng.UniformIndex(order.size());
      Mbuf* m = order[victim];
      order[victim] = order.back();
      order.pop_back();
      outstanding.erase(m);
      pools.Free(m);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, MempoolModelCheck, ::testing::Range(1, 5));

TEST(NicOrdering, RxRingsAreFifoPerQueue) {
  NetioEnv env;
  Mempool pool(env.backing, 4096, env.director);
  SimNic::Config config;
  config.num_queues = 4;
  SimNic nic(config, env.hierarchy, env.memory, pool, env.director);

  TrafficConfig tc;
  tc.rate_gbps = 80.0;
  tc.seed = 5;
  TrafficGenerator gen(tc);
  std::vector<std::uint64_t> last_id(4, 0);
  std::vector<Nanoseconds> last_ready(4, 0);
  for (const WirePacket& p : gen.Generate(3000)) {
    (void)nic.Deliver(p);
  }
  for (std::size_t q = 0; q < 4; ++q) {
    while (!nic.RxEmpty(q)) {
      const Nanoseconds ready = nic.RxHead(q).ready_ns;
      Mbuf* m = nic.RxPop(q);
      ASSERT_GE(m->wire.id, last_id[q]) << "queue " << q;   // arrival order kept
      ASSERT_GE(ready, last_ready[q]) << "queue " << q;     // ready times monotone
      ASSERT_GE(ready - m->wire.tx_time_ns, 0.0);           // causality
      last_id[q] = m->wire.id;
      last_ready[q] = ready;
      nic.Transmit(m);
    }
  }
}

TEST(NicOrdering, RssSpreadsFlowsReasonably) {
  NetioEnv env;
  Mempool pool(env.backing, 64, env.director);
  SimNic::Config config;
  config.num_queues = 8;
  SimNic nic(config, env.hierarchy, env.memory, pool, env.director);
  TrafficConfig tc;
  tc.num_flows = 4096;
  tc.seed = 9;
  TrafficGenerator gen(tc);
  std::vector<std::size_t> counts(8, 0);
  for (const WirePacket& p : gen.Generate(20000)) {
    ++counts[nic.QueueForPacket(p)];
  }
  for (const std::size_t c : counts) {
    EXPECT_GT(c, 20000u / 16);  // no starved queue
    EXPECT_LT(c, 20000u / 4);   // no hot-spotted queue
  }
}

using RuntimeCausalityParams = std::tuple<bool, double>;

class RuntimeCausality : public ::testing::TestWithParam<RuntimeCausalityParams> {};

TEST_P(RuntimeCausality, LatenciesRespectPipelineAndServiceFloors) {
  const auto [cache_director, gbps] = GetParam();
  NetioEnv env;
  CacheDirector director(HaswellSliceHash(), env.placement, cache_director);
  Mempool pool(env.backing, 8192, director);
  SimNic::Config config;
  SimNic nic(config, env.hierarchy, env.memory, pool, director);
  ServiceChain chain;
  chain.Append(std::make_unique<MacSwap>(env.hierarchy, env.memory));
  NfvRuntime runtime(NfvRuntime::Config{}, env.hierarchy, nic, chain);

  TrafficConfig tc;
  tc.rate_gbps = gbps;
  tc.seed = 13;
  TrafficGenerator gen(tc);
  LatencyRecorder rec;
  runtime.Run(gen.Generate(5000), &rec);
  ASSERT_GT(rec.delivered(), 0u);
  // DuT-side latency can never undercut NIC pipeline + minimum service.
  const double floor_us =
      (config.rx_pipeline_latency_ns +
       env.hierarchy.spec().frequency.ToNanoseconds(MacSwap::kFixedCycles)) /
      1000.0;
  EXPECT_GE(rec.latencies_us().Min(), floor_us);
  // And the run completes: all queues drained.
  for (std::size_t q = 0; q < nic.num_queues(); ++q) {
    EXPECT_TRUE(nic.RxEmpty(q));
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, RuntimeCausality,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Values(1.0, 40.0, 100.0)));

}  // namespace
}  // namespace cachedir
