// Integration tests for the NFV layer: elements mutate headers correctly and
// charge cycles; the runtime preserves causality, measures latency, and
// exhibits queueing.
#include <gtest/gtest.h>

#include <memory>

#include "src/hash/presets.h"
#include "src/netio/nic.h"
#include "src/nfv/chain.h"
#include "src/nfv/elements.h"
#include "src/nfv/runtime.h"
#include "src/sim/machine.h"
#include "src/slice/placement.h"
#include "src/trace/traffic_gen.h"

namespace cachedir {
namespace {

struct NfvFixture {
  MemoryHierarchy hierarchy{HaswellXeonE52667V3(), HaswellSliceHash(), 1};
  SlicePlacement placement{hierarchy};
  PhysicalMemory memory;
  HugepageAllocator backing;
  CacheDirector director{HaswellSliceHash(), placement, false};
  Mempool pool{backing, 1024, director};

  Mbuf* MakeMbufWithPacket(const WirePacket& p) {
    Mbuf* m = pool.Alloc();
    m->headroom = kDefaultHeadroomBytes;
    m->wire = p;
    m->data_len = p.size_bytes;
    WritePacketHeader(memory, m->data_pa(), p);
    return m;
  }
};

WirePacket TestPacket(std::uint32_t src_ip = 0x0A000001) {
  WirePacket p;
  p.flow.src_ip = src_ip;
  p.flow.dst_ip = 0xC0A80042;
  p.flow.src_port = 5555;
  p.flow.dst_port = 80;
  p.size_bytes = 64;
  return p;
}

TEST(ElementTest, MacSwapSwapsAndCharges) {
  NfvFixture f;
  MacSwap element(f.hierarchy, f.memory);
  Mbuf* m = f.MakeMbufWithPacket(TestPacket());
  const ParsedHeader before = ReadPacketHeader(f.memory, m->data_pa());
  const ProcessResult r = element.Process(0, *m);
  EXPECT_FALSE(r.drop);
  EXPECT_GT(r.cycles, MacSwap::kFixedCycles);
  const ParsedHeader after = ReadPacketHeader(f.memory, m->data_pa());
  EXPECT_EQ(after.dst_mac, before.src_mac);
  EXPECT_EQ(after.src_mac, before.dst_mac);
}

TEST(ElementTest, RouterDecrementsTtlAndLooksUpRoute) {
  NfvFixture f;
  IpRouter::Params params;
  params.num_routes = 100;
  IpRouter router(f.hierarchy, f.memory, f.backing, params);
  router.InstallRoute(0xC0A80042u >> 8, 7);
  EXPECT_EQ(router.LookupNextHopForTest(0xC0A80042), 7);

  Mbuf* m = f.MakeMbufWithPacket(TestPacket());
  const ProcessResult r = router.Process(0, *m);
  EXPECT_FALSE(r.drop);
  EXPECT_EQ(ReadPacketHeader(f.memory, m->data_pa()).ttl, 63);
}

TEST(ElementTest, OffloadedRouterSkipsTableAccess) {
  NfvFixture f;
  IpRouter::Params sw;
  sw.num_routes = 10;
  IpRouter::Params hw = sw;
  hw.hw_offloaded = true;
  IpRouter sw_router(f.hierarchy, f.memory, f.backing, sw);
  IpRouter hw_router(f.hierarchy, f.memory, f.backing, hw);
  Mbuf* m1 = f.MakeMbufWithPacket(TestPacket());
  Mbuf* m2 = f.MakeMbufWithPacket(TestPacket(0x0A000002));
  f.hierarchy.FlushAll();
  const Cycles sw_cycles = sw_router.Process(0, *m1).cycles;
  f.hierarchy.FlushAll();
  const Cycles hw_cycles = hw_router.Process(0, *m2).cycles;
  EXPECT_GT(sw_cycles, hw_cycles);  // the tbl24 probe is gone
}

TEST(ElementTest, NaptAllocatesOncePerFlow) {
  NfvFixture f;
  Napt napt(f.hierarchy, f.memory, f.backing, Napt::Params{});
  Mbuf* m1 = f.MakeMbufWithPacket(TestPacket());
  Mbuf* m2 = f.MakeMbufWithPacket(TestPacket());
  (void)napt.Process(0, *m1);
  EXPECT_EQ(napt.flows_created(), 1u);
  const ParsedHeader h1 = ReadPacketHeader(f.memory, m1->data_pa());
  (void)napt.Process(0, *m2);
  EXPECT_EQ(napt.flows_created(), 1u);  // same flow: reuse the translation
  const ParsedHeader h2 = ReadPacketHeader(f.memory, m2->data_pa());
  EXPECT_EQ(h1.flow.src_ip, h2.flow.src_ip);
  EXPECT_EQ(h1.flow.src_port, h2.flow.src_port);
  EXPECT_NE(h1.flow.src_ip, TestPacket().flow.src_ip);  // translated
}

TEST(ElementTest, NaptDistinctFlowsGetDistinctPorts) {
  NfvFixture f;
  Napt napt(f.hierarchy, f.memory, f.backing, Napt::Params{});
  Mbuf* m1 = f.MakeMbufWithPacket(TestPacket(0x0A000001));
  Mbuf* m2 = f.MakeMbufWithPacket(TestPacket(0x0A000002));
  (void)napt.Process(0, *m1);
  (void)napt.Process(0, *m2);
  EXPECT_EQ(napt.flows_created(), 2u);
  EXPECT_NE(ReadPacketHeader(f.memory, m1->data_pa()).flow.src_port,
            ReadPacketHeader(f.memory, m2->data_pa()).flow.src_port);
}

TEST(ElementTest, LoadBalancerIsStickyPerFlowAndRoundRobin) {
  NfvFixture f;
  LoadBalancer::Params params;
  params.num_backends = 4;
  LoadBalancer lb(f.hierarchy, f.memory, f.backing, params);
  // Two packets of one flow -> same backend.
  Mbuf* m1 = f.MakeMbufWithPacket(TestPacket(0x0A000001));
  Mbuf* m2 = f.MakeMbufWithPacket(TestPacket(0x0A000001));
  (void)lb.Process(0, *m1);
  (void)lb.Process(0, *m2);
  EXPECT_EQ(ReadPacketHeader(f.memory, m1->data_pa()).flow.dst_ip,
            ReadPacketHeader(f.memory, m2->data_pa()).flow.dst_ip);
  // Distinct flows cycle through backends.
  std::set<std::uint32_t> backends;
  for (std::uint32_t i = 2; i < 6; ++i) {
    Mbuf* m = f.MakeMbufWithPacket(TestPacket(0x0A000000 + i));
    (void)lb.Process(0, *m);
    backends.insert(ReadPacketHeader(f.memory, m->data_pa()).flow.dst_ip);
  }
  EXPECT_EQ(backends.size(), 4u);
}

TEST(ServiceChainTest, SumsElementCosts) {
  NfvFixture f;
  ServiceChain chain;
  chain.Append(std::make_unique<MacSwap>(f.hierarchy, f.memory));
  chain.Append(std::make_unique<MacSwap>(f.hierarchy, f.memory));
  Mbuf* m = f.MakeMbufWithPacket(TestPacket());
  const ProcessResult r = chain.Process(0, *m);
  EXPECT_GE(r.cycles, 2 * MacSwap::kFixedCycles);
  EXPECT_EQ(chain.Describe(), "MacSwap-MacSwap");
}

// ---- Runtime ----

struct RuntimeFixture {
  MemoryHierarchy hierarchy{HaswellXeonE52667V3(), HaswellSliceHash(), 1};
  SlicePlacement placement{hierarchy};
  PhysicalMemory memory;
  HugepageAllocator backing;
  CacheDirector director{HaswellSliceHash(), placement, false};
  Mempool pool{backing, 4096, director};
  ServiceChain chain;

  RuntimeFixture() { chain.Append(std::make_unique<MacSwap>(hierarchy, memory)); }

  SimNic MakeNic(std::size_t queues, double gap_ns = 1.0) {
    SimNic::Config config;
    config.num_queues = queues;
    config.min_packet_gap_ns = gap_ns;
    return SimNic(config, hierarchy, memory, pool, director);
  }
};

TEST(NfvRuntimeTest, ProcessesEveryPacketAtLowRate) {
  RuntimeFixture f;
  SimNic nic = f.MakeNic(8);
  NfvRuntime runtime(NfvRuntime::Config{}, f.hierarchy, nic, f.chain);
  TrafficConfig tc;
  tc.size_mode = TrafficConfig::SizeMode::kFixed;
  tc.fixed_size = 64;
  tc.rate_mode = TrafficConfig::RateMode::kPps;
  tc.rate_pps = 1000.0;
  TrafficGenerator gen(tc);
  const auto packets = gen.Generate(500);
  LatencyRecorder rec;
  runtime.Run(packets, &rec);
  EXPECT_EQ(rec.delivered(), 500u);
  EXPECT_EQ(runtime.packets_dropped(), 0u);
  // At 1000 pps nothing queues: latency is the NIC pipeline plus service
  // time, a couple of microseconds.
  EXPECT_LT(rec.latencies_us().Percentile(99), 3.0);
}

TEST(NfvRuntimeTest, LatencyGrowsWithOfferedLoad) {
  // Fresh NIC + runtime per offered rate: simulated NIC time is monotonic,
  // so traffic traces restarting at t=0 need a fresh pipeline.
  const auto run_at = [](double gbps) {
    RuntimeFixture f;
    SimNic nic = f.MakeNic(1, 1.0);
    NfvRuntime runtime(NfvRuntime::Config{}, f.hierarchy, nic, f.chain);
    TrafficConfig tc;
    tc.size_mode = TrafficConfig::SizeMode::kFixed;
    tc.fixed_size = 64;
    tc.rate_gbps = gbps;
    tc.seed = 42;
    TrafficGenerator gen(tc);
    LatencyRecorder rec;
    runtime.Run(gen.Generate(3000), &rec);
    return rec.latencies_us().Percentile(99);
  };
  const double light = run_at(0.5);
  const double heavy = run_at(8.0);
  EXPECT_GT(heavy, light * 1.5);
}

TEST(NfvRuntimeTest, OverloadCausesDropsNotDeadlock) {
  RuntimeFixture f;
  SimNic::Config config;
  config.num_queues = 1;
  config.ring_size = 32;
  config.min_packet_gap_ns = 1.0;
  SimNic nic(config, f.hierarchy, f.memory, f.pool, f.director);
  NfvRuntime::Config rt;
  rt.per_packet_overhead_cycles = 100000;  // pathologically slow core
  NfvRuntime runtime(rt, f.hierarchy, nic, f.chain);
  TrafficConfig tc;
  tc.size_mode = TrafficConfig::SizeMode::kFixed;
  tc.fixed_size = 64;
  tc.rate_gbps = 10.0;
  TrafficGenerator gen(tc);
  LatencyRecorder rec;
  runtime.Run(gen.Generate(2000), &rec);
  EXPECT_GT(runtime.packets_dropped(), 0u);
  EXPECT_EQ(rec.delivered() + runtime.packets_dropped(), 2000u);
}

TEST(NfvRuntimeTest, CompletionTimeCoversAllPackets) {
  RuntimeFixture f;
  SimNic nic = f.MakeNic(8);
  NfvRuntime runtime(NfvRuntime::Config{}, f.hierarchy, nic, f.chain);
  TrafficConfig tc;
  tc.rate_gbps = 10.0;
  TrafficGenerator gen(tc);
  const auto packets = gen.Generate(1000);
  runtime.Run(packets, nullptr);
  EXPECT_GE(runtime.CompletionTimeNs(), packets.back().tx_time_ns);
  EXPECT_EQ(runtime.packets_processed(), 1000u);
}

TEST(NfvRuntimeTest, WireMeasurementIncludesIngressLag) {
  // With measure_from_dut_port=false the latency includes time spent
  // waiting for the NIC (PAUSE throttling); at rates above the NIC's pps
  // cap that dwarfs the DuT-side number.
  RuntimeFixture f;
  SimNic::Config nic_config;
  nic_config.num_queues = 8;
  nic_config.min_packet_gap_ns = 500.0;  // 2 Mpps cap: far below offered
  SimNic nic(nic_config, f.hierarchy, f.memory, f.pool, f.director);

  NfvRuntime::Config dut_cfg;
  dut_cfg.measure_from_dut_port = true;
  NfvRuntime::Config wire_cfg;
  wire_cfg.measure_from_dut_port = false;

  TrafficConfig tc;
  tc.size_mode = TrafficConfig::SizeMode::kFixed;
  tc.fixed_size = 64;
  tc.rate_gbps = 10.0;  // ~18 Mpps offered >> 2 Mpps NIC
  tc.seed = 50;

  // Same NIC/time stream: run DuT-measured first, then wire-measured on a
  // fresh pipeline for a clean comparison.
  LatencyRecorder dut_rec;
  {
    NfvRuntime runtime(dut_cfg, f.hierarchy, nic, f.chain);
    TrafficGenerator gen(tc);
    runtime.Run(gen.Generate(2000), &dut_rec);
  }
  RuntimeFixture f2;
  SimNic nic2 = [&f2] {
    SimNic::Config c;
    c.num_queues = 8;
    c.min_packet_gap_ns = 500.0;
    return SimNic(c, f2.hierarchy, f2.memory, f2.pool, f2.director);
  }();
  LatencyRecorder wire_rec;
  {
    NfvRuntime runtime(wire_cfg, f2.hierarchy, nic2, f2.chain);
    TrafficGenerator gen(tc);
    runtime.Run(gen.Generate(2000), &wire_rec);
  }
  ASSERT_GT(dut_rec.delivered(), 0u);
  ASSERT_GT(wire_rec.delivered(), 0u);
  EXPECT_GT(wire_rec.latencies_us().Percentile(99),
            dut_rec.latencies_us().Percentile(99) * 2);
}

TEST(NfvRuntimeTest, WarmupWithoutRecorderThenMeasure) {
  RuntimeFixture f;
  SimNic nic = f.MakeNic(8);
  NfvRuntime runtime(NfvRuntime::Config{}, f.hierarchy, nic, f.chain);
  TrafficConfig tc;
  tc.rate_gbps = 5.0;
  TrafficGenerator gen(tc);
  runtime.Run(gen.Generate(500), nullptr);  // warm-up: not recorded
  LatencyRecorder rec;
  runtime.Run(gen.Generate(500), &rec);
  EXPECT_EQ(rec.delivered(), 500u);
  EXPECT_EQ(runtime.packets_processed(), 1000u);
}

}  // namespace
}  // namespace cachedir
