#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "src/hash/fast_slice_hash.h"
#include "src/hash/presets.h"
#include "src/hash/slice_hash.h"
#include "src/mem/hugepage.h"
#include "src/slice/slice_mapper.h"
#include "src/sim/rng.h"

namespace cachedir {
namespace {

TEST(ParityTest, ComputesXorOfSelectedBits) {
  EXPECT_EQ(ParityOf(0b1011, 0b1111), 1u);
  EXPECT_EQ(ParityOf(0b1011, 0b0011), 0u);
  EXPECT_EQ(ParityOf(0, ~0ull), 0u);
  EXPECT_EQ(ParityOf(~0ull, ~0ull), 0u);  // 64 ones -> even parity
}

TEST(MaskOfBitsTest, BuildsMasks) {
  EXPECT_EQ(MaskOfBits({0, 1, 63}), 0x8000'0000'0000'0003ull);
  EXPECT_EQ(MaskOfBits({}), 0u);
}

TEST(XorSliceHashTest, AllBytesOfALineShareASlice) {
  const auto hash = HaswellSliceHash();
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const PhysAddr line = LineBase(rng.UniformU64(0, 1ull << 37));
    const SliceId s = hash->SliceFor(line);
    EXPECT_EQ(hash->SliceFor(line + 1), s);
    EXPECT_EQ(hash->SliceFor(line + 63), s);
  }
}

TEST(XorSliceHashTest, IsXorLinear) {
  const auto hash = HaswellSliceHash();
  Rng rng(2);
  // slice(a ^ d) == slice(a) ^ slice(0 ^ d) for line-aligned deltas: the
  // defining property the reverse-engineering module relies on.
  for (int i = 0; i < 1000; ++i) {
    const PhysAddr a = LineBase(rng.UniformU64(0, 1ull << 37));
    const PhysAddr d = LineBase(rng.UniformU64(0, 1ull << 37));
    EXPECT_EQ(hash->SliceFor(a ^ d), hash->SliceFor(a) ^ hash->SliceFor(d) ^ hash->SliceFor(0));
  }
}

TEST(XorSliceHashTest, DistributesNearlyUniformly) {
  const auto hash = HaswellSliceHash();
  std::vector<std::size_t> counts(8, 0);
  const std::size_t lines = 1 << 16;
  for (std::size_t i = 0; i < lines; ++i) {
    ++counts[hash->SliceFor(i * kCacheLineSize)];
  }
  for (const std::size_t c : counts) {
    EXPECT_NEAR(static_cast<double>(c), lines / 8.0, lines / 8.0 * 0.05);
  }
}

TEST(XorSliceHashTest, AdjacentLinesUsuallyLandOnDifferentSlices) {
  // Complex Addressing exists to spread consecutive lines; bit 6 is in the
  // first mask, so consecutive lines must alternate the low output bit.
  const auto hash = HaswellSliceHash();
  for (PhysAddr line = 0; line < 1024 * kCacheLineSize; line += kCacheLineSize) {
    EXPECT_NE(hash->SliceFor(line), hash->SliceFor(line + kCacheLineSize));
  }
}

TEST(XorSliceHashTest, RejectsBadMasks) {
  EXPECT_THROW(XorSliceHash({}), std::invalid_argument);
  EXPECT_THROW(XorSliceHash({MaskOfBits({3})}), std::invalid_argument);  // offset bit
  EXPECT_THROW(XorSliceHash(std::vector<std::uint64_t>(7, MaskOfBits({8}))),
               std::invalid_argument);
}

TEST(XorLutSliceHashTest, SkylakeCoversAllEighteenSlices) {
  const auto hash = SkylakeSliceHash();
  EXPECT_EQ(hash->num_slices(), 18u);
  std::vector<std::size_t> counts(18, 0);
  const std::size_t lines = 1 << 16;
  for (std::size_t i = 0; i < lines; ++i) {
    const SliceId s = hash->SliceFor(i * kCacheLineSize);
    ASSERT_LT(s, 18u);
    ++counts[s];
  }
  // Every slice is reachable and the spread is near-uniform: each slice owns
  // 3 or 4 of the 64 LUT entries, i.e. between ~4.7% and ~6.3% of lines.
  for (const std::size_t c : counts) {
    EXPECT_GT(c, 0u);
    const double frac = static_cast<double>(c) / lines;
    EXPECT_GT(frac, 0.03);
    EXPECT_LT(frac, 0.08);
  }
}

TEST(XorLutSliceHashTest, ValidatesLutSizeAndEntries) {
  EXPECT_THROW(XorLutSliceHash({MaskOfBits({8})}, {0, 1, 2}, 4), std::invalid_argument);
  EXPECT_THROW(XorLutSliceHash({MaskOfBits({8})}, {0, 9}, 4), std::invalid_argument);
}

TEST(ModuloSliceHashTest, CyclesThroughSlices) {
  ModuloSliceHash hash(8);
  EXPECT_EQ(hash.SliceFor(0), 0u);
  EXPECT_EQ(hash.SliceFor(64), 1u);
  EXPECT_EQ(hash.SliceFor(64 * 8), 0u);
}

// Pins the sealed dispatch against the virtual implementation: FastSliceHash
// copies each preset's parameters at construction and must agree with the
// SliceHash it sealed on every address, across all preset families (pure-XOR
// Haswell, XOR+LUT Skylake and Sandy Bridge, modulo) — including unaligned
// intra-line bytes. The hierarchy's devirtualized fast path relies on this.
TEST(FastSliceHashTest, MatchesEveryPresetHashExactly) {
  std::vector<std::shared_ptr<const SliceHash>> presets = {
      HaswellSliceHash(), SkylakeSliceHash(), SandyBridgeSliceHash(),
      std::make_shared<ModuloSliceHash>(8)};
  for (const auto& hash : presets) {
    const FastSliceHash fast(*hash);
    ASSERT_EQ(fast.num_slices(), hash->num_slices());
    Rng rng(99);
    for (int i = 0; i < 20000; ++i) {
      const PhysAddr addr = rng.UniformU64(0, 1ull << 37);
      ASSERT_EQ(fast.SliceFor(addr), hash->SliceFor(addr))
          << "sealed dispatch diverged at addr " << addr;
    }
    // Line-edge addresses: every byte of a line must keep routing together.
    for (PhysAddr line = 0; line < (1u << 20); line += kCacheLineSize) {
      ASSERT_EQ(fast.SliceFor(line), hash->SliceFor(line));
      ASSERT_EQ(fast.SliceFor(line + kCacheLineSize - 1), hash->SliceFor(line));
    }
  }
}

TEST(SliceHistogramTest, MatchesDirectCount) {
  const auto hash = HaswellSliceHash();
  HugepageAllocator alloc;
  const Mapping m = alloc.Allocate(1 << 21, PageSize::k2M);
  const auto histogram = SliceHistogram(*hash, m);
  std::size_t total = 0;
  for (const std::size_t c : histogram) {
    total += c;
  }
  EXPECT_EQ(total, m.size / kCacheLineSize);
}

}  // namespace
}  // namespace cachedir
