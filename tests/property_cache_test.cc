// Property-based tests of the set-associative cache: a randomized operation
// stream is replayed against a simple reference model (map + recency list)
// and the cache must agree on every observable at every step, across a sweep
// of geometries. Plus structural invariants under load for all replacement
// policies.
#include <gtest/gtest.h>

#include <algorithm>
#include <list>
#include <map>
#include <optional>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "src/cache/set_assoc_cache.h"
#include "src/sim/rng.h"

namespace cachedir {
namespace {

// Reference model: per-set list of (line, dirty), front = MRU, true LRU.
class ReferenceCache {
 public:
  ReferenceCache(std::size_t sets, std::size_t ways) : sets_(sets), ways_(ways), data_(sets) {}

  std::size_t SetOf(PhysAddr line) const { return (line >> kCacheLineBits) % sets_; }

  bool Contains(PhysAddr line) const {
    const auto& set = data_[SetOf(line)];
    return std::any_of(set.begin(), set.end(),
                       [line](const auto& e) { return e.first == line; });
  }

  bool Touch(PhysAddr line) {
    auto& set = data_[SetOf(line)];
    for (auto it = set.begin(); it != set.end(); ++it) {
      if (it->first == line) {
        set.splice(set.begin(), set, it);
        return true;
      }
    }
    return false;
  }

  std::optional<EvictedLine> Insert(PhysAddr line, bool dirty) {
    auto& set = data_[SetOf(line)];
    std::optional<EvictedLine> evicted;
    if (set.size() == ways_) {
      evicted = EvictedLine{set.back().first, set.back().second};
      set.pop_back();
    }
    set.emplace_front(line, dirty);
    return evicted;
  }

  bool MarkDirty(PhysAddr line) {
    auto& set = data_[SetOf(line)];
    for (auto& e : set) {
      if (e.first == line) {
        e.second = true;
        return true;
      }
    }
    return false;
  }

  bool Invalidate(PhysAddr line) {
    auto& set = data_[SetOf(line)];
    const auto before = set.size();
    set.remove_if([line](const auto& e) { return e.first == line; });
    return set.size() != before;
  }

  std::size_t resident() const {
    std::size_t n = 0;
    for (const auto& set : data_) {
      n += set.size();
    }
    return n;
  }

 private:
  std::size_t sets_;
  std::size_t ways_;
  std::vector<std::list<std::pair<PhysAddr, bool>>> data_;
};

using Geometry = std::tuple<std::size_t, std::size_t>;  // sets, ways

class CacheModelCheck : public ::testing::TestWithParam<Geometry> {};

TEST_P(CacheModelCheck, AgreesWithReferenceModelOnRandomOps) {
  const auto [sets, ways] = GetParam();
  SetAssocCache::Config config;
  config.num_sets = sets;
  config.num_ways = ways;
  config.replacement = ReplacementKind::kLru;
  SetAssocCache cache(config);
  ReferenceCache model(sets, ways);

  Rng rng(sets * 1000 + ways);
  const std::size_t tag_space = 8 * ways;  // enough conflicts to force churn
  for (int step = 0; step < 20000; ++step) {
    const PhysAddr line =
        (rng.UniformU64(0, tag_space - 1) * sets + rng.UniformIndex(sets)) * kCacheLineSize;
    switch (rng.UniformU64(0, 4)) {
      case 0:
      case 1: {  // lookup-or-insert (the common access pattern)
        const bool hit = cache.Touch(line);
        ASSERT_EQ(hit, model.Touch(line)) << "step " << step;
        if (!hit) {
          const auto evicted = cache.Insert(line, false);
          const auto expected = model.Insert(line, false);
          ASSERT_EQ(evicted.has_value(), expected.has_value()) << "step " << step;
          if (evicted.has_value()) {
            ASSERT_EQ(evicted->line, expected->line) << "step " << step;
            ASSERT_EQ(evicted->dirty, expected->dirty) << "step " << step;
          }
        }
        break;
      }
      case 2:
        ASSERT_EQ(cache.MarkDirty(line), model.MarkDirty(line)) << "step " << step;
        break;
      case 3:
        ASSERT_EQ(cache.Invalidate(line).was_present, model.Invalidate(line))
            << "step " << step;
        break;
      case 4:
        ASSERT_EQ(cache.Contains(line), model.Contains(line)) << "step " << step;
        break;
    }
    if (step % 1000 == 0) {
      ASSERT_EQ(cache.resident_lines(), model.resident());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Geometries, CacheModelCheck,
                         ::testing::Values(Geometry{4, 1}, Geometry{4, 2}, Geometry{16, 4},
                                           Geometry{64, 8}, Geometry{32, 20},
                                           Geometry{128, 11}, Geometry{2048, 20}),
                         [](const auto& param_info) {
                           return "sets" + std::to_string(std::get<0>(param_info.param)) + "ways" +
                                  std::to_string(std::get<1>(param_info.param));
                         });

// ---- Structural invariants across replacement policies ----

class CachePolicyInvariants : public ::testing::TestWithParam<ReplacementKind> {};

TEST_P(CachePolicyInvariants, ResidentNeverExceedsCapacityAndNoDuplicates) {
  SetAssocCache::Config config;
  config.num_sets = 32;
  config.num_ways = 6;
  config.replacement = GetParam();
  config.seed = 99;
  SetAssocCache cache(config);

  Rng rng(7);
  for (int step = 0; step < 30000; ++step) {
    const PhysAddr line = rng.UniformU64(0, 4095) * kCacheLineSize;
    if (!cache.Touch(line)) {
      (void)cache.Insert(line, rng.Bernoulli(0.3));
    }
    ASSERT_LE(cache.resident_lines(), 32u * 6u);
  }
  // No set may hold the same line twice or exceed its ways.
  for (std::size_t set = 0; set < 32; ++set) {
    const auto lines = cache.LinesInSet(set);
    ASSERT_LE(lines.size(), 6u);
    std::vector<PhysAddr> addrs;
    for (const auto& e : lines) {
      addrs.push_back(e.line);
      EXPECT_EQ(cache.SetIndexOf(e.line), set);
    }
    std::sort(addrs.begin(), addrs.end());
    EXPECT_EQ(std::adjacent_find(addrs.begin(), addrs.end()), addrs.end());
  }
}

TEST_P(CachePolicyInvariants, EvictedLinesWereActuallyResident) {
  SetAssocCache::Config config;
  config.num_sets = 8;
  config.num_ways = 4;
  config.replacement = GetParam();
  config.seed = 5;
  SetAssocCache cache(config);

  std::set<PhysAddr> resident;
  Rng rng(13);
  for (int step = 0; step < 10000; ++step) {
    const PhysAddr line = rng.UniformU64(0, 255) * kCacheLineSize;
    if (cache.Touch(line)) {
      ASSERT_TRUE(resident.count(line)) << "hit on non-resident line";
      continue;
    }
    ASSERT_FALSE(resident.count(line)) << "miss on resident line";
    const auto evicted = cache.Insert(line, false);
    if (evicted.has_value()) {
      ASSERT_EQ(resident.erase(evicted->line), 1u) << "evicted a ghost line";
    }
    resident.insert(line);
  }
  ASSERT_EQ(resident.size(), cache.resident_lines());
}

TEST_P(CachePolicyInvariants, WayMaskConfinementHolds) {
  SetAssocCache::Config config;
  config.num_sets = 4;
  config.num_ways = 8;
  config.replacement = GetParam();
  config.seed = 3;
  SetAssocCache cache(config);

  // Partition A: ways 0-1, partition B: ways 2-7. Fill B, then churn A hard:
  // B's lines must never be evicted.
  std::vector<PhysAddr> b_lines;
  for (std::size_t i = 0; i < 4 * 6; ++i) {
    const PhysAddr line = (1000 + i) * 4 * kCacheLineSize + (i % 4) * kCacheLineSize;
    (void)cache.Insert(line, false, 0b11111100);
    b_lines.push_back(line);
  }
  Rng rng(1);
  for (int step = 0; step < 5000; ++step) {
    const PhysAddr line = rng.UniformU64(0, 127) * kCacheLineSize;
    if (!cache.Touch(line)) {
      (void)cache.Insert(line, false, 0b00000011);
    }
  }
  for (const PhysAddr line : b_lines) {
    EXPECT_TRUE(cache.Contains(line));
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, CachePolicyInvariants,
                         ::testing::Values(ReplacementKind::kLru, ReplacementKind::kTreePlru,
                                           ReplacementKind::kRandom),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case ReplacementKind::kLru:
                               return "Lru";
                             case ReplacementKind::kTreePlru:
                               return "TreePlru";
                             case ReplacementKind::kRandom:
                               return "Random";
                           }
                           return "Unknown";
                         });

}  // namespace
}  // namespace cachedir
