// Property-based tests of the set-associative cache: a randomized operation
// stream is replayed against a simple reference model (map + recency list)
// and the cache must agree on every observable at every step, across a sweep
// of geometries. Plus structural invariants under load for all replacement
// policies.
#include <gtest/gtest.h>

#include <algorithm>
#include <list>
#include <map>
#include <optional>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "src/cache/set_assoc_cache.h"
#include "src/sim/rng.h"

namespace cachedir {
namespace {

// Reference model: per-set list of (line, dirty), front = MRU, true LRU.
class ReferenceCache {
 public:
  ReferenceCache(std::size_t sets, std::size_t ways) : sets_(sets), ways_(ways), data_(sets) {}

  std::size_t SetOf(PhysAddr line) const { return (line >> kCacheLineBits) % sets_; }

  bool Contains(PhysAddr line) const {
    const auto& set = data_[SetOf(line)];
    return std::any_of(set.begin(), set.end(),
                       [line](const auto& e) { return e.first == line; });
  }

  bool Touch(PhysAddr line) {
    auto& set = data_[SetOf(line)];
    for (auto it = set.begin(); it != set.end(); ++it) {
      if (it->first == line) {
        set.splice(set.begin(), set, it);
        return true;
      }
    }
    return false;
  }

  std::optional<EvictedLine> Insert(PhysAddr line, bool dirty) {
    auto& set = data_[SetOf(line)];
    std::optional<EvictedLine> evicted;
    if (set.size() == ways_) {
      evicted = EvictedLine{set.back().first, set.back().second};
      set.pop_back();
    }
    set.emplace_front(line, dirty);
    return evicted;
  }

  bool MarkDirty(PhysAddr line) {
    auto& set = data_[SetOf(line)];
    for (auto& e : set) {
      if (e.first == line) {
        e.second = true;
        return true;
      }
    }
    return false;
  }

  bool Invalidate(PhysAddr line) {
    auto& set = data_[SetOf(line)];
    const auto before = set.size();
    set.remove_if([line](const auto& e) { return e.first == line; });
    return set.size() != before;
  }

  std::size_t resident() const {
    std::size_t n = 0;
    for (const auto& set : data_) {
      n += set.size();
    }
    return n;
  }

 private:
  std::size_t sets_;
  std::size_t ways_;
  std::vector<std::list<std::pair<PhysAddr, bool>>> data_;
};

using Geometry = std::tuple<std::size_t, std::size_t>;  // sets, ways

class CacheModelCheck : public ::testing::TestWithParam<Geometry> {};

TEST_P(CacheModelCheck, AgreesWithReferenceModelOnRandomOps) {
  const auto [sets, ways] = GetParam();
  SetAssocCache::Config config;
  config.num_sets = sets;
  config.num_ways = ways;
  config.replacement = ReplacementKind::kLru;
  SetAssocCache cache(config);
  ReferenceCache model(sets, ways);

  Rng rng(sets * 1000 + ways);
  const std::size_t tag_space = 8 * ways;  // enough conflicts to force churn
  for (int step = 0; step < 20000; ++step) {
    const PhysAddr line =
        (rng.UniformU64(0, tag_space - 1) * sets + rng.UniformIndex(sets)) * kCacheLineSize;
    switch (rng.UniformU64(0, 4)) {
      case 0:
      case 1: {  // lookup-or-insert (the common access pattern)
        const bool hit = cache.Touch(line);
        ASSERT_EQ(hit, model.Touch(line)) << "step " << step;
        if (!hit) {
          const auto evicted = cache.Insert(line, false);
          const auto expected = model.Insert(line, false);
          ASSERT_EQ(evicted.has_value(), expected.has_value()) << "step " << step;
          if (evicted.has_value()) {
            ASSERT_EQ(evicted->line, expected->line) << "step " << step;
            ASSERT_EQ(evicted->dirty, expected->dirty) << "step " << step;
          }
        }
        break;
      }
      case 2:
        ASSERT_EQ(cache.MarkDirty(line), model.MarkDirty(line)) << "step " << step;
        break;
      case 3:
        ASSERT_EQ(cache.Invalidate(line).was_present, model.Invalidate(line))
            << "step " << step;
        break;
      case 4:
        ASSERT_EQ(cache.Contains(line), model.Contains(line)) << "step " << step;
        break;
    }
    if (step % 1000 == 0) {
      ASSERT_EQ(cache.resident_lines(), model.resident());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Geometries, CacheModelCheck,
                         ::testing::Values(Geometry{4, 1}, Geometry{4, 2}, Geometry{16, 4},
                                           Geometry{64, 8}, Geometry{32, 20},
                                           Geometry{128, 11}, Geometry{2048, 20}),
                         [](const auto& param_info) {
                           return "sets" + std::to_string(std::get<0>(param_info.param)) + "ways" +
                                  std::to_string(std::get<1>(param_info.param));
                         });

// ---- SoA tag store vs naive membership model, all policies ----
//
// The LRU-order model above can predict exact victims only for true LRU with
// a full way mask. This check covers every policy (LRU, tree-PLRU, random)
// and randomized way-mask inserts by feeding the cache's own eviction
// reports back into a naive map model: every observable (hit/miss, dirty
// bits, eviction legality, resident census via LinesInSet) must agree at
// every step, and evicted lines must have been resident with the exact
// dirty bit the cache claims. Seed-deterministic per the determinism
// invariant.

using PolicyGeometry = std::tuple<ReplacementKind, std::size_t, std::size_t>;

class CachePolicyModelCheck : public ::testing::TestWithParam<PolicyGeometry> {};

TEST_P(CachePolicyModelCheck, ObservablesAgreeWithMembershipModelUnderWayMasks) {
  const auto [kind, sets, ways] = GetParam();
  SetAssocCache::Config config;
  config.num_sets = sets;
  config.num_ways = ways;
  config.replacement = kind;
  config.seed = sets * 31 + ways;
  SetAssocCache cache(config);

  std::map<PhysAddr, bool> model;  // line -> dirty
  Rng rng(sets * 7919 + ways * 13 + static_cast<std::uint64_t>(kind));
  const std::uint64_t full_mask =
      ways >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << ways) - 1;
  const std::size_t tag_space = 6 * ways;

  for (int step = 0; step < 20000; ++step) {
    const PhysAddr line =
        (rng.UniformU64(0, tag_space - 1) * sets + rng.UniformIndex(sets)) * kCacheLineSize;
    const auto it = model.find(line);
    const bool in_model = it != model.end();
    switch (rng.UniformU64(0, 6)) {
      case 0:
      case 1: {  // probe-or-insert, sometimes under a partition mask
        const auto probe = cache.Probe(line);
        ASSERT_EQ(probe.hit, in_model) << "step " << step;
        if (probe.hit) {
          ASSERT_EQ(probe.dirty, it->second) << "step " << step;
          break;
        }
        const bool dirty = rng.Bernoulli(0.4);
        std::uint64_t mask = full_mask;
        if (rng.Bernoulli(0.5)) {
          mask = rng.UniformU64(1, full_mask);  // nonzero sub-partition
        }
        const auto evicted = cache.Insert(line, dirty, mask);
        if (evicted.has_value()) {
          const auto victim = model.find(evicted->line);
          ASSERT_NE(victim, model.end()) << "evicted a ghost line at step " << step;
          ASSERT_EQ(evicted->dirty, victim->second) << "step " << step;
          ASSERT_EQ(cache.SetIndexOf(evicted->line), cache.SetIndexOf(line))
              << "victim came from another set at step " << step;
          model.erase(victim);
        }
        model[line] = dirty;
        break;
      }
      case 2:
        ASSERT_EQ(cache.MarkDirty(line), in_model) << "step " << step;
        if (in_model) {
          it->second = true;
        }
        break;
      case 3: {
        const bool expect = in_model && it->second;
        ASSERT_EQ(cache.MarkClean(line), expect) << "step " << step;
        if (in_model) {
          it->second = false;
        }
        break;
      }
      case 4: {
        const auto inv = cache.Invalidate(line);
        ASSERT_EQ(inv.was_present, in_model) << "step " << step;
        if (in_model) {
          ASSERT_EQ(inv.was_dirty, it->second) << "step " << step;
          model.erase(it);
        }
        break;
      }
      case 5:
        ASSERT_EQ(cache.Contains(line), in_model) << "step " << step;
        break;
      case 6:
        ASSERT_EQ(cache.IsDirty(line), in_model && it->second) << "step " << step;
        break;
    }
    if (step % 2000 == 1999) {
      // Full census: the SoA arrays, walked set by set, must reproduce the
      // model exactly — lines, dirty bits, and nothing else.
      std::map<PhysAddr, bool> census;
      for (std::size_t set = 0; set < sets; ++set) {
        for (const auto& entry : cache.LinesInSet(set)) {
          ASSERT_TRUE(census.emplace(entry.line, entry.dirty).second)
              << "duplicate resident line at step " << step;
        }
      }
      ASSERT_EQ(census, model) << "census diverged at step " << step;
      ASSERT_EQ(cache.resident_lines(), model.size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    PolicyGeometries, CachePolicyModelCheck,
    ::testing::Values(PolicyGeometry{ReplacementKind::kLru, 16, 8},
                      PolicyGeometry{ReplacementKind::kLru, 64, 20},
                      PolicyGeometry{ReplacementKind::kTreePlru, 16, 8},
                      PolicyGeometry{ReplacementKind::kTreePlru, 64, 11},
                      PolicyGeometry{ReplacementKind::kRandom, 16, 8},
                      PolicyGeometry{ReplacementKind::kRandom, 64, 20}),
    [](const auto& param_info) {
      // No structured binding here: commas inside [] would split the
      // INSTANTIATE_TEST_SUITE_P macro's arguments.
      const ReplacementKind kind = std::get<0>(param_info.param);
      const std::size_t sets = std::get<1>(param_info.param);
      const std::size_t ways = std::get<2>(param_info.param);
      std::string name;
      switch (kind) {
        case ReplacementKind::kLru:
          name = "Lru";
          break;
        case ReplacementKind::kTreePlru:
          name = "TreePlru";
          break;
        case ReplacementKind::kRandom:
          name = "Random";
          break;
      }
      return name + "sets" + std::to_string(sets) + "ways" + std::to_string(ways);
    });

// ---- Structural invariants across replacement policies ----

class CachePolicyInvariants : public ::testing::TestWithParam<ReplacementKind> {};

TEST_P(CachePolicyInvariants, ResidentNeverExceedsCapacityAndNoDuplicates) {
  SetAssocCache::Config config;
  config.num_sets = 32;
  config.num_ways = 6;
  config.replacement = GetParam();
  config.seed = 99;
  SetAssocCache cache(config);

  Rng rng(7);
  for (int step = 0; step < 30000; ++step) {
    const PhysAddr line = rng.UniformU64(0, 4095) * kCacheLineSize;
    if (!cache.Touch(line)) {
      (void)cache.Insert(line, rng.Bernoulli(0.3));
    }
    ASSERT_LE(cache.resident_lines(), 32u * 6u);
  }
  // No set may hold the same line twice or exceed its ways.
  for (std::size_t set = 0; set < 32; ++set) {
    const auto lines = cache.LinesInSet(set);
    ASSERT_LE(lines.size(), 6u);
    std::vector<PhysAddr> addrs;
    for (const auto& e : lines) {
      addrs.push_back(e.line);
      EXPECT_EQ(cache.SetIndexOf(e.line), set);
    }
    std::sort(addrs.begin(), addrs.end());
    EXPECT_EQ(std::adjacent_find(addrs.begin(), addrs.end()), addrs.end());
  }
}

TEST_P(CachePolicyInvariants, EvictedLinesWereActuallyResident) {
  SetAssocCache::Config config;
  config.num_sets = 8;
  config.num_ways = 4;
  config.replacement = GetParam();
  config.seed = 5;
  SetAssocCache cache(config);

  std::set<PhysAddr> resident;
  Rng rng(13);
  for (int step = 0; step < 10000; ++step) {
    const PhysAddr line = rng.UniformU64(0, 255) * kCacheLineSize;
    if (cache.Touch(line)) {
      ASSERT_TRUE(resident.count(line)) << "hit on non-resident line";
      continue;
    }
    ASSERT_FALSE(resident.count(line)) << "miss on resident line";
    const auto evicted = cache.Insert(line, false);
    if (evicted.has_value()) {
      ASSERT_EQ(resident.erase(evicted->line), 1u) << "evicted a ghost line";
    }
    resident.insert(line);
  }
  ASSERT_EQ(resident.size(), cache.resident_lines());
}

TEST_P(CachePolicyInvariants, WayMaskConfinementHolds) {
  SetAssocCache::Config config;
  config.num_sets = 4;
  config.num_ways = 8;
  config.replacement = GetParam();
  config.seed = 3;
  SetAssocCache cache(config);

  // Partition A: ways 0-1, partition B: ways 2-7. Fill B, then churn A hard:
  // B's lines must never be evicted.
  std::vector<PhysAddr> b_lines;
  for (std::size_t i = 0; i < 4 * 6; ++i) {
    const PhysAddr line = (1000 + i) * 4 * kCacheLineSize + (i % 4) * kCacheLineSize;
    (void)cache.Insert(line, false, 0b11111100);
    b_lines.push_back(line);
  }
  Rng rng(1);
  for (int step = 0; step < 5000; ++step) {
    const PhysAddr line = rng.UniformU64(0, 127) * kCacheLineSize;
    if (!cache.Touch(line)) {
      (void)cache.Insert(line, false, 0b00000011);
    }
  }
  for (const PhysAddr line : b_lines) {
    EXPECT_TRUE(cache.Contains(line));
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, CachePolicyInvariants,
                         ::testing::Values(ReplacementKind::kLru, ReplacementKind::kTreePlru,
                                           ReplacementKind::kRandom),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case ReplacementKind::kLru:
                               return "Lru";
                             case ReplacementKind::kTreePlru:
                               return "TreePlru";
                             case ReplacementKind::kRandom:
                               return "Random";
                           }
                           return "Unknown";
                         });

}  // namespace
}  // namespace cachedir
