#include <gtest/gtest.h>

#include <stdexcept>

#include "src/hash/presets.h"
#include "src/kvs/kvs.h"
#include "src/kvs/kvs_element.h"
#include "src/kvs/server.h"
#include "src/netio/mempool.h"
#include "src/sim/machine.h"
#include "src/slice/placement.h"

namespace cachedir {
namespace {

struct KvsFixture {
  MemoryHierarchy hierarchy{HaswellXeonE52667V3(), HaswellSliceHash(), 1};
  HugepageAllocator backing;

  EmulatedKvs Make(bool slice_aware, std::size_t num_values = 1 << 14) {
    EmulatedKvs::Config config;
    config.num_values = num_values;
    config.slice_aware = slice_aware;
    config.target_slice = 0;
    return EmulatedKvs(hierarchy, backing, config);
  }
};

TEST(EmulatedKvsTest, SliceAwareValuesAllMapToTargetSlice) {
  KvsFixture f;
  EmulatedKvs kvs = f.Make(true);
  const auto hash = HaswellSliceHash();
  for (std::uint64_t key = 0; key < kvs.num_values(); key += 37) {
    EXPECT_EQ(hash->SliceFor(kvs.ValuePa(key)), 0u);
  }
}

TEST(EmulatedKvsTest, NormalValuesSpreadOverAllSlices) {
  KvsFixture f;
  EmulatedKvs kvs = f.Make(false);
  const auto hash = HaswellSliceHash();
  std::vector<std::size_t> counts(8, 0);
  for (std::uint64_t key = 0; key < kvs.num_values(); ++key) {
    ++counts[hash->SliceFor(kvs.ValuePa(key))];
  }
  for (const std::size_t c : counts) {
    EXPECT_GT(c, kvs.num_values() / 16);  // roughly uniform
  }
}

TEST(EmulatedKvsTest, ValuesOccupyDistinctLines) {
  KvsFixture f;
  EmulatedKvs kvs = f.Make(true, 1 << 12);
  std::set<PhysAddr> lines;
  for (std::uint64_t key = 0; key < kvs.num_values(); ++key) {
    EXPECT_TRUE(lines.insert(LineBase(kvs.ValuePa(key))).second);
  }
}

TEST(EmulatedKvsTest, HotKeyGetsFasterOnRepeat) {
  KvsFixture f;
  EmulatedKvs kvs = f.Make(false);
  const Cycles cold = kvs.Get(0, 42);
  const Cycles warm = kvs.Get(0, 42);
  EXPECT_GT(cold, warm);  // second hit comes from L1
}

TEST(EmulatedKvsTest, RejectsBadKeysAndConfig) {
  KvsFixture f;
  EmulatedKvs kvs = f.Make(false);
  EXPECT_THROW((void)kvs.Get(0, kvs.num_values()), std::out_of_range);
  EXPECT_THROW((void)kvs.Set(0, kvs.num_values() + 5), std::out_of_range);
  EmulatedKvs::Config bad;
  bad.num_values = 0;
  EXPECT_THROW(EmulatedKvs(f.hierarchy, f.backing, bad), std::invalid_argument);
  EmulatedKvs::Config bad_slice;
  bad_slice.num_values = 16;
  bad_slice.slice_aware = true;
  bad_slice.target_slice = 99;
  EXPECT_THROW(EmulatedKvs(f.hierarchy, f.backing, bad_slice), std::invalid_argument);
}

TEST(KvsServerTest, SkewedWorkloadBeatsUniform) {
  // With a value space much larger than the LLC, a Zipf-skewed workload must
  // serve more TPS than uniform (hot values stay cached) — the first-order
  // effect in Fig. 8.
  KvsFixture f;
  EmulatedKvs kvs = f.Make(false, 1 << 20);  // 64 MB of values vs 20 MB LLC
  KvsServer server(kvs, 0);
  KvsWorkload skew;
  skew.zipf_theta = 0.99;
  skew.requests = 200000;
  KvsWorkload uniform = skew;
  uniform.zipf_theta = 0.0;
  const KvsResult skew_result = server.Run(skew);
  const KvsResult uniform_result = server.Run(uniform);
  EXPECT_GT(skew_result.tps_millions, uniform_result.tps_millions * 1.2);
}

TEST(KvsServerTest, TpsMatchesCycleAccounting) {
  KvsFixture f;
  EmulatedKvs kvs = f.Make(false);
  KvsServer server(kvs, 0);
  KvsWorkload w;
  w.requests = 10000;
  const KvsResult r = server.Run(w);
  EXPECT_EQ(r.requests, 10000u);
  EXPECT_NEAR(r.tps_millions, 3200.0 / r.avg_cycles_per_request, 1e-9);
  EXPECT_GT(r.avg_cycles_per_request, kvs.config().fixed_request_cycles);
}

TEST(KvsServerTest, DeterministicAcrossRuns) {
  KvsFixture f1;
  KvsFixture f2;
  EmulatedKvs kvs1 = f1.Make(false);
  EmulatedKvs kvs2 = f2.Make(false);
  KvsWorkload w;
  w.requests = 20000;
  const KvsResult r1 = KvsServer(kvs1, 0).Run(w);
  const KvsResult r2 = KvsServer(kvs2, 0).Run(w);
  EXPECT_DOUBLE_EQ(r1.total_cycles, r2.total_cycles);
}

TEST(KvsServerTest, GetFractionControlsWriteMix) {
  KvsFixture f;
  EmulatedKvs kvs = f.Make(false, 1 << 12);
  KvsServer server(kvs, 0);
  // All-SET workloads dirty lines; they must still complete and account.
  KvsWorkload w;
  w.get_fraction = 0.0;
  w.requests = 5000;
  const KvsResult r = server.Run(w);
  EXPECT_GT(r.avg_cycles_per_request, 0.0);
}

TEST(KvsServerElementTest, ServesRequestsFromPacketHeaders) {
  KvsFixture f;
  EmulatedKvs kvs = f.Make(false, 1 << 10);
  PhysicalMemory memory;
  SlicePlacement placement(f.hierarchy);
  CacheDirector director(HaswellSliceHash(), placement, false);
  Mempool pool(f.backing, 8, director);
  KvsServerElement element(f.hierarchy, memory, kvs);

  const auto make_request = [&](std::uint32_t key, bool set) {
    Mbuf* m = pool.Alloc();
    WirePacket p;
    p.size_bytes = 128;
    p.flow.src_ip = 0x0A000001;
    p.flow.dst_ip = key;
    p.flow.src_port = static_cast<std::uint16_t>(2000 | (set ? 1 : 0));
    p.flow.dst_port = 11211;
    m->wire = p;
    m->data_len = 128;
    WritePacketHeader(memory, m->data_pa(), p);
    return m;
  };

  Mbuf* get_req = make_request(42, false);
  const ProcessResult get_result = element.Process(0, *get_req);
  EXPECT_FALSE(get_result.drop);
  EXPECT_GT(get_result.cycles, kvs.config().fixed_request_cycles);
  EXPECT_EQ(element.gets(), 1u);
  EXPECT_EQ(element.sets(), 0u);
  // The reply swapped the MACs in place.
  const ParsedHeader reply = ReadPacketHeader(memory, get_req->data_pa());
  EXPECT_EQ(reply.flow.dst_ip, 42u);

  Mbuf* set_req = make_request(7, true);
  (void)element.Process(0, *set_req);
  EXPECT_EQ(element.sets(), 1u);
  pool.Free(get_req);
  pool.Free(set_req);
}

TEST(KvsServerElementTest, HotKeyRequestsGetCheaperWhenCached) {
  KvsFixture f;
  EmulatedKvs kvs = f.Make(false, 1 << 10);
  PhysicalMemory memory;
  SlicePlacement placement(f.hierarchy);
  CacheDirector director(HaswellSliceHash(), placement, false);
  Mempool pool(f.backing, 4, director);
  KvsServerElement element(f.hierarchy, memory, kvs);
  Mbuf* m = pool.Alloc();
  WirePacket p;
  p.flow.dst_ip = 99;
  m->wire = p;
  WritePacketHeader(memory, m->data_pa(), p);
  const Cycles cold = element.Process(0, *m).cycles;
  const Cycles warm = element.Process(0, *m).cycles;
  EXPECT_LT(warm, cold);  // value and header both cached on repeat
  pool.Free(m);
}

}  // namespace
}  // namespace cachedir
