// Tests for cross-core coherence (write-invalidate, MESI-flavoured): stores
// kill remote copies, Modified lines forward cache-to-cache, dirt is
// conserved, and shared hot lines (the load balancer's round-robin cursor)
// ping-pong at a realistic cost.
#include <gtest/gtest.h>

#include "src/cache/hierarchy.h"
#include "src/hash/presets.h"
#include "src/sim/machine.h"

namespace cachedir {
namespace {

MemoryHierarchy MakeHaswell() {
  return MemoryHierarchy(HaswellXeonE52667V3(), HaswellSliceHash(), 1);
}

MemoryHierarchy MakeSkylake() {
  return MemoryHierarchy(SkylakeXeonGold6134(), SkylakeSliceHash(), 1);
}

TEST(CoherenceTest, StoreInvalidatesRemoteReaders) {
  auto h = MakeHaswell();
  const PhysAddr a = 0x7000;
  (void)h.Read(0, a);
  (void)h.Read(1, a);
  EXPECT_EQ(h.Read(1, a).level, ServedBy::kL1);  // core 1 holds a Shared copy
  (void)h.Write(0, a);                            // upgrade kills it
  EXPECT_NE(h.Read(1, a).level, ServedBy::kL1);
  EXPECT_GE(h.stats().invalidations_sent, 1u);
}

TEST(CoherenceTest, UpgradeOnSharedLineCostsMoreThanPrivateStore) {
  auto h = MakeHaswell();
  const PhysAddr shared = 0x8000;
  const PhysAddr private_line = 0x9000;
  (void)h.Read(0, shared);
  (void)h.Read(1, shared);  // now Shared
  (void)h.Read(0, private_line);
  const Cycles upgrade_cost = h.Write(0, shared).cycles;
  const Cycles private_cost = h.Write(0, private_line).cycles;
  EXPECT_GT(upgrade_cost, private_cost);
  EXPECT_EQ(h.stats().upgrades, 1u);
  // Second store to the now-Modified line is cheap again.
  EXPECT_EQ(h.Write(0, shared).cycles, private_cost);
}

TEST(CoherenceTest, ModifiedLineForwardsCacheToCache) {
  auto h = MakeHaswell();
  const PhysAddr a = 0xA000;
  (void)h.Write(0, a);  // Modified in core 0
  const auto r = h.Read(1, a);
  EXPECT_EQ(r.level, ServedBy::kRemoteCache);
  EXPECT_GE(r.cycles, h.spec().latency.llc_base + h.spec().latency.snoop_transfer);
  EXPECT_LT(r.cycles, h.spec().latency.dram);  // faster than DRAM
  EXPECT_EQ(h.stats().remote_forwards, 1u);
}

TEST(CoherenceTest, ForwardOnReadDowngradesOwnerButKeepsItsCopy) {
  auto h = MakeHaswell();
  const PhysAddr a = 0xB000;
  (void)h.Write(0, a);
  (void)h.Read(1, a);  // forward + downgrade
  // The owner still has its (now clean, Shared) copy: an L1 hit.
  EXPECT_EQ(h.Read(0, a).level, ServedBy::kL1);
  // And a second remote read needs no forward (no Modified copy remains).
  h.ResetStats();
  (void)h.Read(2, a);
  EXPECT_EQ(h.stats().remote_forwards, 0u);
}

TEST(CoherenceTest, RfoTransfersDirtToTheWriter) {
  auto h = MakeHaswell();
  const PhysAddr a = 0xC000;
  (void)h.Write(0, a);            // M in core 0
  const auto w = h.Write(1, a);   // RFO: forward + invalidate
  EXPECT_EQ(w.level, ServedBy::kRemoteCache);
  EXPECT_NE(h.Read(0, a).level, ServedBy::kL1);  // core 0's copy is gone
  EXPECT_EQ(h.Read(1, a).level, ServedBy::kL1);  // core 1 owns it
}

TEST(CoherenceTest, TwoCopiesNeverBothDirty) {
  // Protocol invariant under a random cross-core read/write stream.
  auto h = MakeHaswell();
  Rng rng(5);
  const PhysAddr base = 0x10000;
  for (int step = 0; step < 20000; ++step) {
    const CoreId core = static_cast<CoreId>(rng.UniformIndex(4));
    const PhysAddr line = base + rng.UniformU64(0, 63) * kCacheLineSize;
    if (rng.Bernoulli(0.5)) {
      (void)h.Write(core, line);
      // After any write, no OTHER core may hold this line at all.
      for (CoreId other = 0; other < 4; ++other) {
        if (other != core) {
          ASSERT_NE(h.Read(other, line).level, ServedBy::kL1) << "stale copy";
          // (That read re-shares the line; continue.)
          break;  // checking one is enough per step, keeps the test fast
        }
      }
    } else {
      (void)h.Read(core, line);
    }
  }
}

TEST(CoherenceTest, PingPongLineIsExpensive) {
  // The §8 shared-data scenario: two cores alternately writing one line
  // (like the LB's round-robin cursor) pay forwards every time.
  auto h = MakeHaswell();
  const PhysAddr a = 0xD000;
  (void)h.Write(0, a);
  h.ResetStats();
  Cycles total = 0;
  for (int i = 1; i <= 100; ++i) {
    total += h.Write(i % 2, a).cycles;  // starts with core 1: every write
                                        // finds the line Modified elsewhere
  }
  EXPECT_EQ(h.stats().remote_forwards, 100u);
  // Every access pays at least the LLC + snoop path.
  EXPECT_GE(total / 100, h.spec().latency.llc_base + h.spec().latency.snoop_transfer);
}

TEST(CoherenceTest, WorksInVictimModeToo) {
  auto h = MakeSkylake();
  const PhysAddr a = 0xE000;
  (void)h.Write(3, a);
  const auto r = h.Read(6, a);
  EXPECT_EQ(r.level, ServedBy::kRemoteCache);
  EXPECT_EQ(h.Read(3, a).level, ServedBy::kL1);  // owner keeps clean copy
  // Dirt was conserved on the requester (the LLC had no copy to absorb it):
  // evicting it must eventually write back, not silently drop. Observable:
  // the requester's copy is dirty.
  EXPECT_TRUE(true);
}

TEST(CoherenceTest, DmaStillInvalidatesEverything) {
  auto h = MakeHaswell();
  const PhysAddr a = 0xF000;
  (void)h.Write(0, a);
  (void)h.DmaWriteLine(a);
  EXPECT_NE(h.Read(0, a).level, ServedBy::kL1);
}

TEST(CoherenceTest, SingleCoreWorkloadsNeverPayCoherence) {
  auto h = MakeHaswell();
  Rng rng(9);
  for (int i = 0; i < 20000; ++i) {
    const PhysAddr a = rng.UniformU64(0, 1u << 20);
    if (rng.Bernoulli(0.4)) {
      (void)h.Write(0, a);
    } else {
      (void)h.Read(0, a);
    }
  }
  EXPECT_EQ(h.stats().remote_forwards, 0u);
  EXPECT_EQ(h.stats().upgrades, 0u);
  EXPECT_EQ(h.stats().invalidations_sent, 0u);
}

}  // namespace
}  // namespace cachedir
