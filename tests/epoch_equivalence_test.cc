// Epoch-engine equivalence property (docs/architecture.md §14): a
// MemoryHierarchy driven through an EpochEngine must keep every simulated
// output — per-op cycle charges, HierarchyStats, per-slice CBo counters, and
// (observed through continued traffic) directory and tag-array state —
// bit-identical to the serial engine under identical traffic, at every host
// thread count. The suite covers the speculative commit path, the
// abort/rollback/serial-replay path (asserting aborts actually happen on a
// conflict-heavy stream and that committed windows exist on a partitioned
// one), window-boundary invariance, the per_line eager passthrough, and the
// selectable force_serial reference.
#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/cache/hierarchy.h"
#include "src/hash/presets.h"
#include "src/hash/slice_hash.h"
#include "src/mem/hugepage.h"
#include "src/mem/physical_memory.h"
#include "src/netio/cache_director.h"
#include "src/netio/mempool.h"
#include "src/netio/nic.h"
#include "src/nfv/chain.h"
#include "src/nfv/elements.h"
#include "src/nfv/runtime.h"
#include "src/sim/epoch_engine.h"
#include "src/sim/machine.h"
#include "src/sim/rng.h"
#include "src/slice/placement.h"
#include "src/trace/latency_recorder.h"
#include "src/trace/traffic_gen.h"

namespace cachedir {
namespace {

// Shrunken LLC (as in kernel_equivalence_test): eviction and
// back-invalidation chains start after a few thousand lines.
MachineSpec WithSmallLlc(MachineSpec spec) {
  spec.llc_slice.size_bytes = 128 * spec.llc_slice.ways * kCacheLineSize;  // 128 sets
  return spec;
}

constexpr std::size_t kMaxBatchLines = 64;

struct EngineCase {
  MachineSpec (*preset)();
  std::shared_ptr<const SliceHash> (*hash)();
  ReplacementKind replacement;
  LlcInclusionPolicy inclusion;
  std::size_t threads;
  const char* label;
};

std::string CaseName(const ::testing::TestParamInfo<EngineCase>& info) {
  return std::string(info.param.label) + "T" + std::to_string(info.param.threads);
}

// One captured operation's bracket: [begin, end) in line_op_count readings,
// plus the cycles the serial reference charged for it.
struct OpBracket {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  Cycles expected = 0;
};

class EpochEquivalenceTest : public ::testing::TestWithParam<EngineCase> {
 protected:
  void SetUp() override {
    const EngineCase& c = GetParam();
    spec_ = WithSmallLlc(c.preset());
    spec_.replacement = c.replacement;
    spec_.inclusion = c.inclusion;
    hash_ = c.hash();
    MakeEngine(/*window_line_ops=*/256);
  }

  void MakeEngine(std::size_t window_line_ops, bool adaptive = true) {
    engine_.reset();  // detach before the old subject dies
    reference_ = std::make_unique<MemoryHierarchy>(spec_, hash_, /*seed=*/23);
    subject_ = std::make_unique<MemoryHierarchy>(spec_, hash_, /*seed=*/23);
    EpochEngineOptions options;
    options.num_threads = GetParam().threads;
    options.window_line_ops = window_line_ops;
    options.adaptive_window = adaptive;
    options.keep_line_results = true;
    engine_ = std::make_unique<EpochEngine>(*subject_, options);
    brackets_.clear();
    expected_lifetime_total_ = 0;
  }

  // Settles everything, then checks aggregate state and every op's cycles.
  void ExpectConverged() {
    engine_->Flush();
    ASSERT_EQ(reference_->stats(), subject_->stats());
    for (SliceId s = 0; s < spec_.num_slices; ++s) {
      ASSERT_EQ(reference_->llc().cbo().events(s), subject_->llc().cbo().events(s))
          << "CBo counters diverged on slice " << s;
    }
    for (const OpBracket& bracket : brackets_) {
      ASSERT_EQ(engine_->CyclesInRange(bracket.begin, bracket.end), bracket.expected)
          << "op cycles diverged in [" << bracket.begin << ", " << bracket.end << ")";
    }
    // total_cycles() is lifetime-cumulative (it survives DropSettledResults).
    ASSERT_EQ(engine_->total_cycles(), expected_lifetime_total_);
  }

  void RunScalar(CoreId core, PhysAddr addr, bool is_write) {
    const AccessResult ref =
        is_write ? reference_->Write(core, addr) : reference_->Read(core, addr);
    const std::uint64_t begin = engine_->line_op_count();
    is_write ? subject_->Write(core, addr) : subject_->Read(core, addr);
    Record(begin, ref.cycles);
  }

  // Batch without per-line storage: captured; cycles checked via bracket.
  void RunBatch(CoreId core, const AccessBatch& batch, bool is_write) {
    const BatchResult ref =
        is_write ? reference_->WriteRange(core, batch) : reference_->ReadRange(core, batch);
    const std::uint64_t begin = engine_->line_op_count();
    const BatchResult sub =
        is_write ? subject_->WriteRange(core, batch) : subject_->ReadRange(core, batch);
    ASSERT_EQ(ref.lines, sub.lines);
    Record(begin, ref.cycles);
  }

  // Batch demanding per-line results: settles and runs eagerly on the
  // subject, so full AccessResults must match the reference directly.
  void RunBatchPerLine(CoreId core, AccessBatch batch, bool is_write) {
    std::array<AccessResult, kMaxBatchLines> ref_lines{};
    std::array<AccessResult, kMaxBatchLines> sub_lines{};
    AccessBatch ref_batch = batch;
    ref_batch.per_line = ref_lines;
    batch.per_line = sub_lines;
    const BatchResult ref = is_write ? reference_->WriteRange(core, ref_batch)
                                     : reference_->ReadRange(core, ref_batch);
    const BatchResult sub =
        is_write ? subject_->WriteRange(core, batch) : subject_->ReadRange(core, batch);
    ASSERT_EQ(ref, sub);
    for (std::size_t i = 0; i < ref.lines && i < kMaxBatchLines; ++i) {
      ASSERT_EQ(ref_lines[i], sub_lines[i]) << "per-line result " << i << " diverged";
    }
  }

  void RunDmaRange(PhysAddr addr, std::size_t bytes, bool is_write) {
    const Cycles ref =
        is_write ? reference_->DmaWriteRange(addr, bytes) : reference_->DmaReadRange(addr, bytes);
    const std::uint64_t begin = engine_->line_op_count();
    is_write ? subject_->DmaWriteRange(addr, bytes) : subject_->DmaReadRange(addr, bytes);
    Record(begin, ref);
  }

  void RunDmaLine(PhysAddr addr, bool is_write) {
    const Cycles ref = is_write ? reference_->DmaWriteLine(addr) : reference_->DmaReadLine(addr);
    const std::uint64_t begin = engine_->line_op_count();
    is_write ? subject_->DmaWriteLine(addr) : subject_->DmaReadLine(addr);
    Record(begin, ref);
  }

  void Record(std::uint64_t begin, Cycles expected) {
    brackets_.push_back(OpBracket{begin, engine_->line_op_count(), expected});
    expected_lifetime_total_ += expected;
  }

  // A randomized mixed stream over a shared heap + DMA ring: cores contend,
  // so speculative windows hit stale claims and the abort path runs too.
  void RunSharedStream(int steps, Rng& rng) {
    const std::size_t cores = spec_.num_cores;
    const std::size_t llc_lines =
        spec_.num_slices * spec_.llc_slice.num_sets() * spec_.llc_slice.ways;
    const PhysAddr ring = PhysAddr{1} << 30;
    const std::size_t ring_bytes = llc_lines * 4 * kCacheLineSize;
    const PhysAddr heap = PhysAddr{1} << 28;
    const std::size_t heap_bytes = llc_lines * 2 * kCacheLineSize;
    std::vector<PhysAddr> gather;
    gather.reserve(kMaxBatchLines);
    for (int step = 0; step < steps; ++step) {
      const auto core = static_cast<CoreId>(rng.UniformIndex(cores));
      switch (rng.UniformIndex(8)) {
        case 0: {
          RunScalar(core, heap + rng.UniformIndex(heap_bytes), rng.Bernoulli(0.4));
          break;
        }
        case 1: {  // contiguous range, packet-sized
          AccessBatch batch;
          batch.addr = heap + rng.UniformIndex(heap_bytes);
          batch.bytes = rng.UniformIndex(1536);
          RunBatch(core, batch, rng.Bernoulli(0.5));
          break;
        }
        case 2: {  // scattered gather with duplicates
          gather.clear();
          const std::size_t n = 1 + rng.UniformIndex(32);
          for (std::size_t i = 0; i < n; ++i) {
            gather.push_back(heap + rng.UniformIndex(heap_bytes));
          }
          AccessBatch batch;
          batch.gather = gather;
          RunBatch(core, batch, rng.Bernoulli(0.5));
          break;
        }
        case 3: {  // NIC RX / TX DMA
          RunDmaRange(ring + rng.UniformIndex(ring_bytes), 64 + rng.UniformIndex(1472),
                      rng.Bernoulli(0.5));
          break;
        }
        case 4: {  // single-line DMA
          RunDmaLine(ring + rng.UniformIndex(ring_bytes), rng.Bernoulli(0.5));
          break;
        }
        case 5: {  // per-line batch: the eager passthrough under capture
          AccessBatch batch;
          batch.addr = heap + rng.UniformIndex(heap_bytes);
          batch.bytes = rng.UniformIndex(kMaxBatchLines * kCacheLineSize);
          RunBatchPerLine(core, batch, rng.Bernoulli(0.5));
          break;
        }
        case 6: {  // flush a line on both (a serial point under capture)
          const PhysAddr addr = heap + rng.UniformIndex(heap_bytes);
          reference_->FlushLine(addr);
          subject_->FlushLine(addr);
          break;
        }
        case 7: {  // hot line: stores from every core in turn
          const PhysAddr addr = heap + rng.UniformIndex(64) * kCacheLineSize;
          RunScalar(core, addr, /*is_write=*/true);
          break;
        }
        default:
          break;
      }
    }
  }

  MachineSpec spec_;
  std::shared_ptr<const SliceHash> hash_;
  std::unique_ptr<MemoryHierarchy> reference_;
  std::unique_ptr<MemoryHierarchy> subject_;
  std::unique_ptr<EpochEngine> engine_;
  std::vector<OpBracket> brackets_;
  Cycles expected_lifetime_total_ = 0;
};

TEST_P(EpochEquivalenceTest, RandomizedSharedStreamsStayBitIdentical) {
  Rng rng(987);
  RunSharedStream(1500, rng);
  ExpectConverged();
  // The stream crossed several windows and the speculative path actually ran.
  const EpochEngineStats& es = engine_->engine_stats();
  EXPECT_GT(es.windows, 1u);
  EXPECT_EQ(es.speculative_windows, es.windows);
}

TEST_P(EpochEquivalenceTest, CoreDisjointStreamsCommitSpeculatively) {
  // Cores touch disjoint heap regions and DMA stays off-heap: no cross-core
  // sharing, so windows must overwhelmingly commit (self-conflicts through
  // LLC back-invalidation remain possible on this shrunken LLC).
  Rng rng(55);
  const std::size_t cores = spec_.num_cores;
  const PhysAddr heap = PhysAddr{1} << 28;
  const std::size_t per_core_bytes = 1 << 20;
  const PhysAddr ring = PhysAddr{1} << 30;
  for (int step = 0; step < 1200; ++step) {
    const auto core = static_cast<CoreId>(rng.UniformIndex(cores));
    const PhysAddr base = heap + core * per_core_bytes;
    switch (rng.UniformIndex(3)) {
      case 0: {
        RunScalar(core, base + rng.UniformIndex(per_core_bytes), rng.Bernoulli(0.5));
        break;
      }
      case 1: {
        AccessBatch batch;
        batch.addr = base + rng.UniformIndex(per_core_bytes);
        batch.bytes = rng.UniformIndex(1024);
        RunBatch(core, batch, rng.Bernoulli(0.5));
        break;
      }
      case 2: {
        RunDmaRange(ring + rng.UniformIndex(1 << 22), 64 + rng.UniformIndex(1472),
                    rng.Bernoulli(0.5));
        break;
      }
      default:
        break;
    }
  }
  ExpectConverged();
  const EpochEngineStats& es = engine_->engine_stats();
  ASSERT_GT(es.speculative_windows, 0u);
  EXPECT_GT(es.speculative_windows, es.aborted_windows) << "no window ever committed";
}

TEST_P(EpochEquivalenceTest, ConflictHeavyWindowsAbortAndRecover) {
  // Every core hammers the same handful of lines with stores: phase-1 claims
  // go stale inside nearly every window, so the abort → rollback → serial
  // replay path must run and still converge bit-exactly.
  Rng rng(77);
  const std::size_t cores = spec_.num_cores;
  const PhysAddr hot = PhysAddr{1} << 26;
  for (int step = 0; step < 1200; ++step) {
    const auto core = static_cast<CoreId>(rng.UniformIndex(cores));
    RunScalar(core, hot + rng.UniformIndex(8) * kCacheLineSize, rng.Bernoulli(0.7));
  }
  ExpectConverged();
  if (GetParam().threads > 0) {  // aborts are thread-count independent here
    EXPECT_GT(engine_->engine_stats().aborted_windows, 0u)
        << "conflict-heavy stream never exercised the abort path";
  }
}

TEST_P(EpochEquivalenceTest, WindowBoundariesDoNotChangeResults) {
  // The same stream settled in tiny windows: different barrier placement,
  // same simulated outputs.
  MakeEngine(/*window_line_ops=*/48);
  Rng rng(987);
  RunSharedStream(600, rng);
  ExpectConverged();
  EXPECT_GT(engine_->engine_stats().windows, 10u);
}

TEST_P(EpochEquivalenceTest, WindowScheduleInvarianceAcrossFixedRandomizedAndAdaptive) {
  // The strongest form of the window-boundary claim: the SAME randomized
  // shared stream settled under radically different window schedules —
  // degenerate one-op windows, odd-sized, medium, huge, randomly flushed,
  // and the adaptive controller — must each be bit-identical to the serial
  // reference (and therefore to every other schedule). This is what makes
  // the deterministic adaptive controller safe: its schedule is just one
  // more member of an equivalence class the engine must not leave.
  struct Schedule {
    std::size_t window_line_ops;
    bool adaptive;
    bool random_flush;
  };
  constexpr Schedule kSchedules[] = {
      {1, false, false},   {7, false, false},    {64, false, false},
      {4096, false, false}, {4096, false, true}, {256, true, false},
  };
  for (const Schedule& schedule : kSchedules) {
    MakeEngine(schedule.window_line_ops, schedule.adaptive);
    Rng stream_rng(987);   // identical simulated stream every schedule
    Rng schedule_rng(31);  // boundary placement only, never stream content
    for (int step = 0; step < 400; ++step) {
      RunSharedStream(1, stream_rng);
      if (schedule.random_flush && schedule_rng.Bernoulli(0.125)) {
        engine_->Flush();  // a window boundary wherever this lands
      }
    }
    ExpectConverged();
    if (schedule.window_line_ops == 1) {
      // One line op per window: every captured op settles alone and the
      // schedule still converges (ranges stay whole, so a DMA window holds
      // more than one line; flush and eager per-line steps capture nothing).
      EXPECT_GT(engine_->engine_stats().windows, 200u);
    }
    if (schedule.adaptive) {
      const auto& trajectory = engine_->engine_stats().window_size_trajectory;
      ASSERT_FALSE(trajectory.empty());
      EXPECT_EQ(trajectory.front(), 256u);
    }
  }
}

TEST_P(EpochEquivalenceTest, PureHitWindowsTakeFastCommitAndStayBitIdentical) {
  // Per-core private lines, read over and over: after the fill windows,
  // every window is pure L1 hits and must commit through the no-contention
  // fast path — no replay, no validation — while staying bit-identical.
  MakeEngine(/*window_line_ops=*/256, /*adaptive=*/false);
  const std::size_t cores = spec_.num_cores;
  const PhysAddr base = PhysAddr{1} << 26;
  constexpr std::size_t kLinesPerCore = 4;
  for (int lap = 0; lap < 200; ++lap) {
    for (std::size_t c = 0; c < cores; ++c) {
      for (std::size_t i = 0; i < kLinesPerCore; ++i) {
        RunScalar(static_cast<CoreId>(c), base + (c * kLinesPerCore + i) * kCacheLineSize,
                  /*is_write=*/false);
      }
    }
  }
  ExpectConverged();
  const EpochEngineStats& es = engine_->engine_stats();
  EXPECT_GT(es.fast_commit_windows, 0u) << "pure-hit windows never took the fast path";
  EXPECT_EQ(es.aborted_windows, 0u);
}

TEST_P(EpochEquivalenceTest, ForceSerialReferencePathStaysSelectable) {
  engine_.reset();
  reference_ = std::make_unique<MemoryHierarchy>(spec_, hash_, /*seed=*/23);
  subject_ = std::make_unique<MemoryHierarchy>(spec_, hash_, /*seed=*/23);
  EpochEngineOptions options;
  options.num_threads = GetParam().threads;
  options.force_serial = true;
  options.keep_line_results = true;
  engine_ = std::make_unique<EpochEngine>(*subject_, options);
  brackets_.clear();
  expected_lifetime_total_ = 0;

  Rng rng(987);
  RunSharedStream(600, rng);
  ExpectConverged();
  const EpochEngineStats& es = engine_->engine_stats();
  EXPECT_GT(es.windows, 0u);
  EXPECT_EQ(es.speculative_windows, 0u);
  EXPECT_EQ(es.aborted_windows, 0u);
}

TEST_P(EpochEquivalenceTest, DropSettledResultsRetiresSpans) {
  Rng rng(11);
  RunSharedStream(200, rng);
  ExpectConverged();
  const std::uint64_t settled = engine_->line_op_count();
  engine_->DropSettledResults();
  if (!brackets_.empty()) {
    EXPECT_THROW(engine_->CyclesInRange(brackets_.front().begin, brackets_.front().end),
                 std::out_of_range);
  }
  brackets_.clear();
  RunSharedStream(200, rng);
  ExpectConverged();
  EXPECT_GE(brackets_.front().begin, settled);
}

constexpr EngineCase kCases[] = {
    {&HaswellXeonE52667V3, &HaswellSliceHash, ReplacementKind::kLru,
     LlcInclusionPolicy::kInclusive, 1, "HaswellLruInclusive"},
    {&HaswellXeonE52667V3, &HaswellSliceHash, ReplacementKind::kLru,
     LlcInclusionPolicy::kInclusive, 2, "HaswellLruInclusive"},
    {&HaswellXeonE52667V3, &HaswellSliceHash, ReplacementKind::kLru,
     LlcInclusionPolicy::kInclusive, 4, "HaswellLruInclusive"},
    {&HaswellXeonE52667V3, &HaswellSliceHash, ReplacementKind::kLru,
     LlcInclusionPolicy::kInclusive, 8, "HaswellLruInclusive"},
    {&HaswellXeonE52667V3, &HaswellSliceHash, ReplacementKind::kRandom,
     LlcInclusionPolicy::kInclusive, 4, "HaswellRandomInclusive"},
    {&HaswellXeonE52667V3, &HaswellSliceHash, ReplacementKind::kTreePlru,
     LlcInclusionPolicy::kVictim, 4, "HaswellPlruVictim"},
    {&SkylakeXeonGold6134, &SkylakeSliceHash, ReplacementKind::kLru, LlcInclusionPolicy::kVictim,
     1, "SkylakeLruVictim"},
    {&SkylakeXeonGold6134, &SkylakeSliceHash, ReplacementKind::kLru, LlcInclusionPolicy::kVictim,
     2, "SkylakeLruVictim"},
    {&SkylakeXeonGold6134, &SkylakeSliceHash, ReplacementKind::kLru, LlcInclusionPolicy::kVictim,
     4, "SkylakeLruVictim"},
    {&SkylakeXeonGold6134, &SkylakeSliceHash, ReplacementKind::kLru, LlcInclusionPolicy::kVictim,
     8, "SkylakeLruVictim"},
    {&SandyBridgeXeonQuad, &SandyBridgeSliceHash, ReplacementKind::kLru,
     LlcInclusionPolicy::kInclusive, 4, "SandyBridgeLruInclusive"},
    {&SandyBridgeXeonQuad, &SandyBridgeSliceHash, ReplacementKind::kRandom,
     LlcInclusionPolicy::kVictim, 8, "SandyBridgeRandomVictim"},
};

INSTANTIATE_TEST_SUITE_P(Matrix, EpochEquivalenceTest, ::testing::ValuesIn(kCases), CaseName);

// Specs the engine cannot speculate on fall back to serial windows
// transparently — same outputs, no parallel phases.
TEST(EpochEngineFallbackTest, PrefetcherSpecRunsSerialWindows) {
  MachineSpec spec = WithSmallLlc(HaswellXeonE52667V3());
  spec.l2_next_line_prefetch = true;
  auto hash = HaswellSliceHash();
  MemoryHierarchy reference(spec, hash, /*seed=*/9);
  MemoryHierarchy subject(spec, hash, /*seed=*/9);
  EpochEngineOptions options;
  options.num_threads = 4;
  EpochEngine engine(subject, options);

  Rng rng(13);
  const PhysAddr heap = PhysAddr{1} << 27;
  for (int step = 0; step < 2000; ++step) {
    const auto core = static_cast<CoreId>(rng.UniformIndex(spec.num_cores));
    const PhysAddr addr = heap + rng.UniformIndex(1 << 22);
    const bool is_write = rng.Bernoulli(0.3);
    is_write ? reference.Write(core, addr) : reference.Read(core, addr);
    is_write ? subject.Write(core, addr) : subject.Read(core, addr);
  }
  engine.Flush();
  EXPECT_EQ(reference.stats(), subject.stats());
  EXPECT_GT(engine.engine_stats().windows, 0u);
  EXPECT_EQ(engine.engine_stats().speculative_windows, 0u);
}

// The engine detaches on destruction; the hierarchy then runs serially and
// a new engine may attach.
TEST(EpochEngineLifecycleTest, DetachesAndReattaches) {
  MachineSpec spec = WithSmallLlc(HaswellXeonE52667V3());
  auto hash = HaswellSliceHash();
  MemoryHierarchy reference(spec, hash, /*seed=*/4);
  MemoryHierarchy subject(spec, hash, /*seed=*/4);
  {
    EpochEngineOptions options;
    options.num_threads = 2;
    EpochEngine engine(subject, options);
    for (int i = 0; i < 200; ++i) {
      reference.Read(0, (PhysAddr{1} << 27) + static_cast<PhysAddr>(i) * kCacheLineSize);
      subject.Read(0, (PhysAddr{1} << 27) + static_cast<PhysAddr>(i) * kCacheLineSize);
    }
  }  // destructor settles + detaches
  EXPECT_EQ(reference.stats(), subject.stats());
  const AccessResult ref = reference.Read(1, PhysAddr{1} << 27);
  const AccessResult sub = subject.Read(1, PhysAddr{1} << 27);  // serial again: real result
  EXPECT_EQ(ref, sub);
  EpochEngineOptions options;
  options.num_threads = 2;
  EpochEngine engine(subject, options);
  reference.Write(2, PhysAddr{1} << 27);
  subject.Write(2, PhysAddr{1} << 27);
  engine.Flush();
  EXPECT_EQ(reference.stats(), subject.stats());
}

// ---------------------------------------------------------------------------
// NFV-burst streams under the engine: a complete DuT (NIC + chain + runtime)
// with the runtime's deferred drain must keep per-packet latency samples,
// drop decisions, NIC/hierarchy stats and CBo counters bit-identical to the
// plain serial stack.

// One complete DuT, optionally driven through an EpochEngine.
class EngineNfvStack {
 public:
  EngineNfvStack(bool skylake, std::uint64_t chain_seed, std::size_t engine_threads) {
    spec_ = WithSmallLlc(skylake ? SkylakeXeonGold6134() : HaswellXeonE52667V3());
    hash_ = skylake ? SkylakeSliceHash() : HaswellSliceHash();
    hierarchy_ = std::make_unique<MemoryHierarchy>(spec_, hash_, /*seed=*/23);
    placement_ = std::make_unique<SlicePlacement>(*hierarchy_);
    director_ = std::make_unique<CacheDirector>(hash_, *placement_, /*enabled=*/true);
    pool_ = std::make_unique<Mempool>(backing_, /*num_mbufs=*/2048, *director_);
    SimNic::Config nic_config;
    nic_config.num_queues = 4;
    nic_config.ring_size = 256;
    nic_ = std::make_unique<SimNic>(nic_config, *hierarchy_, memory_, *pool_, *director_);
    BuildChain(chain_seed);
    NfvRuntime::Config config;
    if (engine_threads > 0) {
      EpochEngineOptions options;
      options.num_threads = engine_threads;
      options.keep_line_results = true;
      engine_ = std::make_unique<EpochEngine>(*hierarchy_, options);
      config.engine = engine_.get();
    }
    runtime_ = std::make_unique<NfvRuntime>(config, *hierarchy_, *nic_, chain_);
  }

  void Run(std::span<const WirePacket> packets) { runtime_->Run(packets, &recorder_); }

  const MachineSpec& spec() const { return spec_; }
  const MemoryHierarchy& hierarchy() const { return *hierarchy_; }
  const SimNic& nic() const { return *nic_; }
  const NfvRuntime& runtime() const { return *runtime_; }
  const LatencyRecorder& recorder() const { return recorder_; }
  const EpochEngine* engine() const { return engine_.get(); }

 private:
  void BuildChain(std::uint64_t chain_seed) {
    Rng rng(chain_seed);
    const std::size_t length = 1 + rng.UniformIndex(3);
    for (std::size_t i = 0; i < length; ++i) {
      switch (rng.UniformIndex(4)) {
        case 0:
          chain_.Append(std::make_unique<MacSwap>(*hierarchy_, memory_));
          break;
        case 1: {
          IpRouter::Params params;
          params.num_routes = 512;
          params.seed = chain_seed + i;
          chain_.Append(std::make_unique<IpRouter>(*hierarchy_, memory_, backing_, params));
          break;
        }
        case 2:
          chain_.Append(std::make_unique<Napt>(*hierarchy_, memory_, backing_, Napt::Params{}));
          break;
        default:
          chain_.Append(std::make_unique<LoadBalancer>(*hierarchy_, memory_, backing_,
                                                       LoadBalancer::Params{}));
          break;
      }
    }
  }

  MachineSpec spec_;
  std::shared_ptr<const SliceHash> hash_;
  std::unique_ptr<MemoryHierarchy> hierarchy_;
  std::unique_ptr<SlicePlacement> placement_;
  std::unique_ptr<CacheDirector> director_;
  PhysicalMemory memory_;
  HugepageAllocator backing_;
  std::unique_ptr<MbufSource> pool_;
  std::unique_ptr<SimNic> nic_;
  ServiceChain chain_;
  std::unique_ptr<EpochEngine> engine_;
  std::unique_ptr<NfvRuntime> runtime_;
  LatencyRecorder recorder_;
};

void ExpectStacksIdentical(EngineNfvStack& engine, EngineNfvStack& serial) {
  const std::vector<double>& a = engine.recorder().latencies_us().values();
  const std::vector<double>& b = serial.recorder().latencies_us().values();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "latency sample " << i << " diverged";
  }
  EXPECT_EQ(engine.recorder().delivered(), serial.recorder().delivered());
  EXPECT_EQ(engine.recorder().drops(), serial.recorder().drops());
  EXPECT_EQ(engine.runtime().packets_processed(), serial.runtime().packets_processed());
  EXPECT_EQ(engine.runtime().packets_dropped(), serial.runtime().packets_dropped());
  EXPECT_EQ(engine.runtime().CompletionTimeNs(), serial.runtime().CompletionTimeNs());
  const NicQueueStats nic_a = engine.nic().TotalStats();
  const NicQueueStats nic_b = serial.nic().TotalStats();
  EXPECT_EQ(nic_a.delivered, nic_b.delivered);
  EXPECT_EQ(nic_a.dropped_ring_full, nic_b.dropped_ring_full);
  EXPECT_EQ(nic_a.dropped_no_mbuf, nic_b.dropped_no_mbuf);
  EXPECT_EQ(nic_a.dropped_ingress, nic_b.dropped_ingress);
  ASSERT_EQ(engine.hierarchy().stats(), serial.hierarchy().stats());
  for (SliceId s = 0; s < engine.spec().num_slices; ++s) {
    ASSERT_EQ(engine.hierarchy().llc().cbo().events(s), serial.hierarchy().llc().cbo().events(s))
        << "CBo counters diverged on slice " << s;
  }
}

struct NfvEngineCase {
  bool skylake = false;
  std::uint64_t chain_seed = 0;
  std::size_t threads = 1;
};

std::string NfvCaseName(const ::testing::TestParamInfo<NfvEngineCase>& info) {
  const NfvEngineCase& p = info.param;
  return std::string(p.skylake ? "Skylake" : "Haswell") + "Chain" +
         std::to_string(p.chain_seed) + "T" + std::to_string(p.threads);
}

class NfvEngineEquivalenceTest : public ::testing::TestWithParam<NfvEngineCase> {};

TEST_P(NfvEngineEquivalenceTest, EngineDrivenDataplaneStaysBitIdentical) {
  const NfvEngineCase& p = GetParam();
  EngineNfvStack engine_stack(p.skylake, p.chain_seed, p.threads);
  EngineNfvStack serial_stack(p.skylake, p.chain_seed, /*engine_threads=*/0);

  // Overload the shrunken DuT so queues fill and the drain phase has real
  // backlogs to capture; two Run calls check cross-phase state persistence.
  TrafficConfig traffic;
  traffic.rate_gbps = 40.0;
  traffic.num_flows = 64;
  traffic.spacing = TrafficConfig::Spacing::kPoisson;
  traffic.seed = 99 + p.chain_seed;
  TrafficGenerator gen(traffic);
  const std::vector<WirePacket> warm = gen.Generate(2000);
  const std::vector<WirePacket> measured = gen.Generate(6000);

  engine_stack.Run(warm);
  serial_stack.Run(warm);
  engine_stack.Run(measured);
  serial_stack.Run(measured);

  EXPECT_GT(engine_stack.runtime().packets_dropped(), 0u);  // drop paths ran
  ASSERT_NE(engine_stack.engine(), nullptr);
  EXPECT_GT(engine_stack.engine()->engine_stats().captured_line_ops, 0u);
  ExpectStacksIdentical(engine_stack, serial_stack);
}

constexpr NfvEngineCase kNfvCases[] = {
    {false, 1, 1}, {false, 1, 2}, {false, 1, 4}, {false, 1, 8},
    {false, 2, 4}, {true, 1, 4},  {true, 3, 8},
};

INSTANTIATE_TEST_SUITE_P(Stacks, NfvEngineEquivalenceTest, ::testing::ValuesIn(kNfvCases),
                         NfvCaseName);

}  // namespace
}  // namespace cachedir
