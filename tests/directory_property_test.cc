// The line-state directory's core invariant: it mirrors the private-cache
// tag arrays EXACTLY. After randomized streams of core reads/writes, DMA,
// line flushes and full flushes, the sharer/dirty masks recomputed by
// brute-force per-core Contains/IsDirty scans must equal what the directory
// answers in O(1). Any divergence means the snoop helpers (HeldElsewhere,
// DirtyElsewhere, ...) would give different coherence decisions than the
// seed implementation that scanned the tag arrays directly.
#include <gtest/gtest.h>

#include <bit>
#include <memory>

#include "src/cache/hierarchy.h"
#include "src/hash/presets.h"
#include "src/sim/machine.h"
#include "src/sim/rng.h"

namespace cachedir {
namespace {

struct DirectoryCase {
  const char* name;
  MachineSpec (*spec)();
  std::shared_ptr<const SliceHash> (*hash)();
  bool prefetch;
};

class DirectoryMirrorsTagArrays : public ::testing::TestWithParam<DirectoryCase> {
 protected:
  MemoryHierarchy Make() {
    MachineSpec spec = GetParam().spec();
    spec.l2_next_line_prefetch = GetParam().prefetch;
    return MemoryHierarchy(spec, GetParam().hash(), 11);
  }

  // Recomputes every mask for `line` from the tag arrays and compares with
  // the directory's entry (or its absence).
  static void CheckLine(const MemoryHierarchy& h, PhysAddr line) {
    std::uint64_t l1_sharers = 0;
    std::uint64_t l2_sharers = 0;
    std::uint64_t l1_dirty = 0;
    std::uint64_t l2_dirty = 0;
    for (CoreId c = 0; c < h.spec().num_cores; ++c) {
      const std::uint64_t bit = std::uint64_t{1} << c;
      if (h.l1_cache(c).Contains(line)) {
        l1_sharers |= bit;
        if (h.l1_cache(c).IsDirty(line)) {
          l1_dirty |= bit;
        }
      }
      if (h.l2_cache(c).Contains(line)) {
        l2_sharers |= bit;
        if (h.l2_cache(c).IsDirty(line)) {
          l2_dirty |= bit;
        }
      }
    }
    const LineDirectoryEntry* entry = h.directory().Find(line);
    if (entry == nullptr) {
      ASSERT_EQ(l1_sharers, 0u) << "directory lost L1 sharers of line " << line;
      ASSERT_EQ(l2_sharers, 0u) << "directory lost L2 sharers of line " << line;
      return;
    }
    ASSERT_EQ(entry->l1_sharers, l1_sharers) << "L1 sharer mask diverged for line " << line;
    ASSERT_EQ(entry->l2_sharers, l2_sharers) << "L2 sharer mask diverged for line " << line;
    ASSERT_EQ(entry->l1_dirty, l1_dirty) << "L1 dirty mask diverged for line " << line;
    ASSERT_EQ(entry->l2_dirty, l2_dirty) << "L2 dirty mask diverged for line " << line;
    // Entries with no sharers may only persist to carry a pending prefetch.
    if (entry->sharers() == 0) {
      ASSERT_TRUE(entry->prefetched) << "stale sharer-free entry for line " << line;
    }
  }
};

TEST_P(DirectoryMirrorsTagArrays, UnderRandomizedAccessDmaAndFlushStreams) {
  auto h = Make();
  const std::size_t cores = h.spec().num_cores;
  // A 4096-line universe: small enough for brute-force sweeps, large enough
  // to evict through L1 and punch holes with invalidations. The disjoint
  // churn region drives LLC evictions, whose back-invalidations must also
  // keep the directory in sync.
  constexpr PhysAddr kBase = 0;
  constexpr std::size_t kUniverseLines = 4096;
  constexpr PhysAddr kChurnBase = 1u << 30;
  constexpr std::size_t kChurnLines = (64u << 20) / kCacheLineSize;

  Rng rng(77);
  for (int op = 0; op < 12000; ++op) {
    const PhysAddr line = kBase + rng.UniformIndex(kUniverseLines) * kCacheLineSize;
    const double action = rng.UniformDouble();
    const CoreId core = static_cast<CoreId>(rng.UniformIndex(cores));
    if (action < 0.40) {
      (void)h.Read(core, line);
    } else if (action < 0.70) {
      (void)h.Write(core, line);
    } else if (action < 0.82) {
      (void)h.DmaWriteLine(line);
    } else if (action < 0.90) {
      // LLC churn outside the universe: evictions back-invalidate inside it.
      (void)h.DmaWriteLine(kChurnBase + rng.UniformIndex(kChurnLines) * kCacheLineSize);
    } else if (action < 0.96) {
      h.FlushLine(line);
    } else {
      (void)h.DmaReadLine(line);
    }
    if ((op + 1) % 3000 == 0) {
      for (std::size_t i = 0; i < kUniverseLines; ++i) {
        CheckLine(h, kBase + i * kCacheLineSize);
      }
    }
  }

  // wbinvd drops every copy everywhere: the directory must end up empty.
  h.FlushAll();
  EXPECT_EQ(h.directory().size(), 0u);
  for (std::size_t i = 0; i < kUniverseLines; ++i) {
    CheckLine(h, kBase + i * kCacheLineSize);
  }
}

TEST_P(DirectoryMirrorsTagArrays, SnoopDecisionsMatchBruteForceOnSharedLine) {
  auto h = Make();
  const std::size_t cores = h.spec().num_cores;
  if (cores < 2) {
    GTEST_SKIP() << "needs at least two cores";
  }
  const PhysAddr line = 0x40000;
  // All cores read: everyone shares, nobody dirty.
  for (CoreId c = 0; c < cores; ++c) {
    (void)h.Read(c, line);
  }
  CheckLine(h, line);
  const LineDirectoryEntry* entry = h.directory().Find(line);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->dirty(), 0u);
  EXPECT_GE(std::popcount(entry->sharers()), 2);

  // One core writes: the others' copies die, the writer's is dirty.
  (void)h.Write(1, line);
  CheckLine(h, line);
  entry = h.directory().Find(line);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->sharers(), std::uint64_t{1} << 1);
  EXPECT_EQ(entry->dirty(), std::uint64_t{1} << 1);

  // Another core reads: forward + downgrade. Inclusive mode parks the dirt
  // in the LLC copy; victim mode has no LLC copy, so the dirt rides on
  // exactly one of the private copies instead.
  (void)h.Read(0, line);
  CheckLine(h, line);
  entry = h.directory().Find(line);
  ASSERT_NE(entry, nullptr);
  if (h.spec().inclusion == LlcInclusionPolicy::kInclusive) {
    EXPECT_EQ(entry->dirty(), 0u);
  } else {
    EXPECT_LE(std::popcount(entry->dirty()), 1);
  }
}

// Forces sustained LLC victim chains: the LLC is shrunk to 128 sets per
// slice, so a universe a few times larger than the whole LLC makes nearly
// every fill evict a resident line. On the inclusive machine each victim
// back-invalidates the cores through the allocation-free
// HandleLlcEviction/BackInvalidate path; the directory must track every
// link of the chain, and inclusion itself must hold: no core may cache a
// line the LLC no longer holds.
TEST_P(DirectoryMirrorsTagArrays, SurvivesLlcEvictionStorm) {
  MachineSpec spec = GetParam().spec();
  spec.l2_next_line_prefetch = GetParam().prefetch;
  spec.llc_slice.size_bytes = 128 * spec.llc_slice.ways * kCacheLineSize;
  MemoryHierarchy h(spec, GetParam().hash(), 11);
  const std::size_t cores = h.spec().num_cores;
  const std::size_t llc_lines = spec.num_slices * spec.llc_slice.num_sets() * spec.llc_slice.ways;
  const std::size_t universe_lines = llc_lines * 3;
  constexpr PhysAddr kBase = 1u << 26;

  const bool inclusive = spec.inclusion == LlcInclusionPolicy::kInclusive;
  Rng rng(29);
  const std::uint64_t fills_before = h.stats().llc_misses + h.stats().prefetches_issued;
  for (int lap = 0; lap < 4; ++lap) {
    // Sequential sweep plus random stores/DMA: the sweep guarantees each
    // lap revisits lines whose LLC copies the later part of the previous
    // lap evicted, so back-invalidated core copies get re-fetched and the
    // directory re-learns them.
    for (std::size_t i = 0; i < universe_lines; ++i) {
      const PhysAddr line = kBase + i * kCacheLineSize;
      const CoreId core = static_cast<CoreId>(i % cores);
      (void)h.Read(core, line);
      if ((i & 15u) == 3u) {
        (void)h.Write(static_cast<CoreId>((i + 1) % cores),
                      kBase + rng.UniformIndex(universe_lines) * kCacheLineSize);
      }
      if ((i & 15u) == 9u) {
        (void)h.DmaWriteLine(kBase + rng.UniformIndex(universe_lines) * kCacheLineSize);
      }
    }
    for (std::size_t i = 0; i < universe_lines; ++i) {
      const PhysAddr line = kBase + i * kCacheLineSize;
      CheckLine(h, line);
      if (inclusive && !h.llc().Contains(line)) {
        // Inclusion: a line absent from the LLC must be absent everywhere.
        for (CoreId c = 0; c < cores; ++c) {
          ASSERT_FALSE(h.l1_cache(c).Contains(line))
              << "L1 copy survived LLC eviction of line " << line;
          ASSERT_FALSE(h.l2_cache(c).Contains(line))
              << "L2 copy survived LLC eviction of line " << line;
        }
      }
    }
  }
  // The storm must actually have stormed: each lap overflows the LLC, so
  // demand misses plus prefetch fills (the prefetcher absorbs most demand
  // misses on the sequential sweep) far exceed LLC capacity.
  const std::uint64_t fills = h.stats().llc_misses + h.stats().prefetches_issued - fills_before;
  EXPECT_GT(fills, static_cast<std::uint64_t>(llc_lines) * 4);
}

INSTANTIATE_TEST_SUITE_P(
    Machines, DirectoryMirrorsTagArrays,
    ::testing::Values(
        DirectoryCase{"Haswell", &HaswellXeonE52667V3, &HaswellSliceHash, false},
        DirectoryCase{"HaswellPrefetch", &HaswellXeonE52667V3, &HaswellSliceHash, true},
        DirectoryCase{"Skylake", &SkylakeXeonGold6134, &SkylakeSliceHash, false},
        DirectoryCase{"SandyBridgePrefetch", &SandyBridgeXeonQuad, &SandyBridgeSliceHash, true}),
    [](const auto& param_info) { return param_info.param.name; });

}  // namespace
}  // namespace cachedir
