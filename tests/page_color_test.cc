// Tests for the page-coloring allocator and the §9 claims about it.
#include <gtest/gtest.h>

#include <set>

#include "src/hash/presets.h"
#include "src/slice/page_color.h"

namespace cachedir {
namespace {

TEST(PageColorTest, ColorCountFollowsGeometry) {
  HugepageAllocator backing;
  // LLC slice: 2048 sets -> 11 index bits -> set bits 16-6 -> colors on
  // bits 16-12 -> 32 colors.
  PageColorAllocator colors(backing, 11);
  EXPECT_EQ(colors.num_colors(), 32u);
  // L2: 512 sets -> 9 index bits -> colors on bits 14-12 -> 8 colors.
  PageColorAllocator l2_colors(backing, 9);
  EXPECT_EQ(l2_colors.num_colors(), 8u);
}

TEST(PageColorTest, AllocationsHaveUniformColor) {
  HugepageAllocator backing;
  PageColorAllocator colors(backing, 11);
  for (const std::uint32_t color : {0u, 7u, 31u}) {
    const SliceBuffer buf = colors.AllocateBytes(color, 64 * 1024);
    for (std::size_t i = 0; i < buf.num_lines(); ++i) {
      ASSERT_EQ(colors.ColorOf(buf.line(i).pa), color);
    }
  }
}

TEST(PageColorTest, DistinctColorsOccupyDisjointLlcSets) {
  // The part of coloring that SURVIVES Complex Addressing: set isolation.
  HugepageAllocator backing;
  PageColorAllocator colors(backing, 11);
  const SliceBuffer a = colors.AllocateBytes(3, 32 * 1024);
  const SliceBuffer b = colors.AllocateBytes(9, 32 * 1024);
  std::set<std::size_t> sets_a;
  for (std::size_t i = 0; i < a.num_lines(); ++i) {
    sets_a.insert((a.line(i).pa >> 6) & 2047);
  }
  for (std::size_t i = 0; i < b.num_lines(); ++i) {
    ASSERT_EQ(sets_a.count((b.line(i).pa >> 6) & 2047), 0u);
  }
}

TEST(PageColorTest, OneColorScattersOverEverySlice) {
  // The part of coloring that Complex Addressing DEFEATS: slice placement.
  HugepageAllocator backing;
  PageColorAllocator colors(backing, 11);
  const SliceBuffer buf = colors.AllocateBytes(0, 64 * 1024);
  const auto hash = HaswellSliceHash();
  std::set<SliceId> slices;
  for (std::size_t i = 0; i < buf.num_lines(); ++i) {
    slices.insert(hash->SliceFor(buf.line(i).pa));
  }
  EXPECT_EQ(slices.size(), 8u);
}

TEST(PageColorTest, RejectsBadArguments) {
  HugepageAllocator backing;
  EXPECT_THROW(PageColorAllocator(backing, 5), std::invalid_argument);
  EXPECT_THROW(PageColorAllocator(backing, 30), std::invalid_argument);
  PageColorAllocator colors(backing, 11);
  EXPECT_THROW((void)colors.AllocateBytes(32, 4096), std::invalid_argument);
}

}  // namespace
}  // namespace cachedir
