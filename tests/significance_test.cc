#include <gtest/gtest.h>

#include <vector>

#include "src/sim/rng.h"
#include "src/stats/significance.h"

namespace cachedir {
namespace {

TEST(MannWhitneyTest, ClearlySeparatedSamplesAreSignificant) {
  const std::vector<double> a = {1, 2, 3, 4, 5, 6, 7, 8};
  const std::vector<double> b = {101, 102, 103, 104, 105, 106, 107, 108};
  const MannWhitneyResult r = MannWhitneyU(a, b);
  EXPECT_LT(r.p_value, 0.001);
  EXPECT_DOUBLE_EQ(r.prob_a_less, 1.0);  // every a below every b
  EXPECT_LT(r.z, 0);
}

TEST(MannWhitneyTest, IdenticalSamplesAreNotSignificant) {
  const std::vector<double> a = {5, 5, 5, 5, 5};
  const std::vector<double> b = {5, 5, 5, 5, 5};
  const MannWhitneyResult r = MannWhitneyU(a, b);
  EXPECT_DOUBLE_EQ(r.p_value, 1.0);
  EXPECT_DOUBLE_EQ(r.prob_a_less, 0.5);
}

TEST(MannWhitneyTest, SameDistributionRarelySignificant) {
  // False-positive rate sanity: two samples from one distribution should be
  // "significant" at alpha=0.05 roughly 5% of the time.
  Rng rng(7);
  int significant = 0;
  const int trials = 400;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> a;
    std::vector<double> b;
    for (int i = 0; i < 20; ++i) {
      a.push_back(rng.UniformDouble());
      b.push_back(rng.UniformDouble());
    }
    if (MannWhitneyU(a, b).p_value < 0.05) {
      ++significant;
    }
  }
  EXPECT_NEAR(static_cast<double>(significant) / trials, 0.05, 0.04);
}

TEST(MannWhitneyTest, DetectsModerateShift) {
  Rng rng(11);
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 50; ++i) {
    a.push_back(rng.UniformDouble());
    b.push_back(rng.UniformDouble() + 0.4);  // clear median shift
  }
  const MannWhitneyResult r = MannWhitneyU(a, b);
  EXPECT_LT(r.p_value, 0.01);
  EXPECT_GT(r.prob_a_less, 0.7);
}

TEST(MannWhitneyTest, SymmetricInDirection) {
  const std::vector<double> lo = {1, 2, 3, 4, 5, 6};
  const std::vector<double> hi = {4, 5, 6, 7, 8, 9};
  const MannWhitneyResult ab = MannWhitneyU(lo, hi);
  const MannWhitneyResult ba = MannWhitneyU(hi, lo);
  EXPECT_NEAR(ab.p_value, ba.p_value, 1e-12);
  EXPECT_NEAR(ab.prob_a_less + ba.prob_a_less, 1.0, 1e-12);
}

TEST(MannWhitneyTest, HandlesHeavyTies) {
  const std::vector<double> a = {1, 1, 1, 2, 2, 3};
  const std::vector<double> b = {2, 2, 3, 3, 3, 4};
  const MannWhitneyResult r = MannWhitneyU(a, b);
  EXPECT_GT(r.prob_a_less, 0.5);
  EXPECT_GE(r.p_value, 0.0);
  EXPECT_LE(r.p_value, 1.0);
}

TEST(MannWhitneyTest, RejectsTinySamples) {
  const std::vector<double> a = {1, 2, 3};
  const std::vector<double> b = {4, 5, 6, 7};
  EXPECT_THROW((void)MannWhitneyU(a, b), std::invalid_argument);
}

}  // namespace
}  // namespace cachedir
