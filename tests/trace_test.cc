#include <gtest/gtest.h>

#include <stdexcept>

#include "src/mem/physical_memory.h"
#include "src/trace/latency_recorder.h"
#include "src/trace/packet.h"
#include "src/trace/traffic_gen.h"

namespace cachedir {
namespace {

TEST(PacketHeaderTest, RoundTripsThroughSimulatedMemory) {
  PhysicalMemory mem;
  WirePacket p;
  p.flow.src_ip = 0x0A000001;
  p.flow.dst_ip = 0xC0A80001;
  p.flow.src_port = 4242;
  p.flow.dst_port = 80;
  p.flow.proto = 6;
  p.tx_time_ns = 123456.789;
  WritePacketHeader(mem, 0x10000, p);
  const ParsedHeader h = ReadPacketHeader(mem, 0x10000);
  EXPECT_EQ(h.flow, p.flow);
  EXPECT_EQ(h.ttl, 64);
  EXPECT_DOUBLE_EQ(h.timestamp_ns, p.tx_time_ns);
}

TEST(PacketHeaderTest, HeaderFitsInOneCacheLine) {
  EXPECT_LE(kTimestampOffset + 8, kHeaderBytes);
  EXPECT_EQ(kHeaderBytes, kCacheLineSize);
}

TEST(PacketHeaderTest, SwapMacExchangesAddresses) {
  PhysicalMemory mem;
  WirePacket p;
  p.flow.src_ip = 1;
  p.flow.dst_ip = 2;
  WritePacketHeader(mem, 0, p);
  const ParsedHeader before = ReadPacketHeader(mem, 0);
  SwapMacAddresses(mem, 0);
  const ParsedHeader after = ReadPacketHeader(mem, 0);
  EXPECT_EQ(after.dst_mac, before.src_mac);
  EXPECT_EQ(after.src_mac, before.dst_mac);
}

TEST(PacketHeaderTest, RewriteSourceAndDestination) {
  PhysicalMemory mem;
  WirePacket p;
  p.flow.src_ip = 1;
  p.flow.dst_ip = 2;
  p.flow.src_port = 10;
  p.flow.dst_port = 20;
  WritePacketHeader(mem, 0, p);
  RewriteIpAndPort(mem, 0, 0xDEAD, 999, /*rewrite_source=*/true);
  ParsedHeader h = ReadPacketHeader(mem, 0);
  EXPECT_EQ(h.flow.src_ip, 0xDEADu);
  EXPECT_EQ(h.flow.src_port, 999);
  EXPECT_EQ(h.flow.dst_ip, 2u);
  EXPECT_EQ(h.flow.dst_port, 20);
  RewriteIpAndPort(mem, 0, 0xBEEF, 1234, /*rewrite_source=*/false);
  h = ReadPacketHeader(mem, 0);
  EXPECT_EQ(h.flow.dst_ip, 0xBEEFu);
  EXPECT_EQ(h.flow.dst_port, 1234);
  EXPECT_EQ(h.flow.src_ip, 0xDEADu);
}

TEST(PacketHeaderTest, TtlDecrementsAndSaturates) {
  PhysicalMemory mem;
  WirePacket p;
  WritePacketHeader(mem, 0, p);
  DecrementTtl(mem, 0);
  EXPECT_EQ(ReadPacketHeader(mem, 0).ttl, 63);
  for (int i = 0; i < 100; ++i) {
    DecrementTtl(mem, 0);
  }
  EXPECT_EQ(ReadPacketHeader(mem, 0).ttl, 0);
}

TEST(TrafficGeneratorTest, CampusMixMatchesTable2Statistics) {
  TrafficConfig config;
  config.size_mode = TrafficConfig::SizeMode::kCampusMix;
  config.seed = 7;
  TrafficGenerator gen(config);
  (void)gen.Generate(200000);
  const auto mix = gen.size_mix();
  const double total = static_cast<double>(mix.total);
  EXPECT_NEAR(mix.under_100 / total, 0.269, 0.01);
  EXPECT_NEAR(mix.from_100_to_500 / total, 0.118, 0.01);
  EXPECT_NEAR(mix.over_500 / total, 0.613, 0.01);
}

TEST(TrafficGeneratorTest, PacedGbpsRateIsHonoured) {
  TrafficConfig config;
  config.size_mode = TrafficConfig::SizeMode::kFixed;
  config.fixed_size = 64;
  config.rate_mode = TrafficConfig::RateMode::kGbps;
  config.rate_gbps = 100.0;
  TrafficGenerator gen(config);
  const auto packets = gen.Generate(10000);
  // 64 B + 20 B overhead = 672 bits per frame -> 6.72 ns at 100 Gbps.
  const double expected_gap = 672.0 / 100.0;
  const double window = packets.back().tx_time_ns - packets.front().tx_time_ns;
  EXPECT_NEAR(window / 9999.0, expected_gap, 1e-9);
}

TEST(TrafficGeneratorTest, PpsRateIsHonoured) {
  TrafficConfig config;
  config.size_mode = TrafficConfig::SizeMode::kFixed;
  config.fixed_size = 64;
  config.rate_mode = TrafficConfig::RateMode::kPps;
  config.rate_pps = 1000.0;
  TrafficGenerator gen(config);
  const auto packets = gen.Generate(1000);
  EXPECT_NEAR(packets[1].tx_time_ns - packets[0].tx_time_ns, 1e6, 1e-6);
}

TEST(TrafficGeneratorTest, TimestampsAreMonotonic) {
  TrafficConfig config;
  config.spacing = TrafficConfig::Spacing::kPoisson;
  config.seed = 3;
  TrafficGenerator gen(config);
  const auto packets = gen.Generate(5000);
  for (std::size_t i = 1; i < packets.size(); ++i) {
    EXPECT_GE(packets[i].tx_time_ns, packets[i - 1].tx_time_ns);
  }
}

TEST(TrafficGeneratorTest, FlowsComeFromConfiguredPopulation) {
  TrafficConfig config;
  config.num_flows = 4;
  config.seed = 5;
  TrafficGenerator gen(config);
  std::set<std::uint32_t> src_ips;
  for (const auto& p : gen.Generate(1000)) {
    src_ips.insert(p.flow.src_ip);
  }
  EXPECT_LE(src_ips.size(), 4u);
  EXPECT_GE(src_ips.size(), 2u);
}

TEST(TrafficGeneratorTest, RejectsBadConfig) {
  TrafficConfig config;
  config.num_flows = 0;
  EXPECT_THROW(TrafficGenerator{config}, std::invalid_argument);
  TrafficConfig config2;
  config2.size_mode = TrafficConfig::SizeMode::kFixed;
  config2.fixed_size = 32;
  EXPECT_THROW(TrafficGenerator{config2}, std::invalid_argument);
}

TEST(LatencyRecorderTest, ComputesLatencyAndThroughput) {
  LatencyRecorder rec;
  WirePacket p;
  p.size_bytes = 1230;  // 1250 B on the wire = 10000 bits
  p.tx_time_ns = 1000;
  rec.RecordDelivery(p, 2000);  // 1 us later
  EXPECT_EQ(rec.delivered(), 1u);
  EXPECT_DOUBLE_EQ(rec.latencies_us().Mean(), 1.0);
  WirePacket p2 = p;
  p2.tx_time_ns = 1500;
  rec.RecordDelivery(p2, 3000);
  // 20000 bits over the [1000, 3000] ns window = 10 Gbps.
  EXPECT_DOUBLE_EQ(rec.ThroughputGbps(), 10.0);
}

TEST(LatencyRecorderTest, CountsDrops) {
  LatencyRecorder rec;
  rec.RecordDrop();
  rec.RecordDrop();
  EXPECT_EQ(rec.drops(), 2u);
  EXPECT_EQ(rec.delivered(), 0u);
}

}  // namespace
}  // namespace cachedir
