// Tests for the uncore counter bank (CBo/CHA model): event recording,
// snapshot/delta semantics, and its wiring into the sliced LLC.
#include <gtest/gtest.h>

#include "src/hash/presets.h"
#include "src/cache/sliced_llc.h"
#include "src/uncore/cbo.h"

namespace cachedir {
namespace {

TEST(CboTest, RecordsLookupsAndMisses) {
  CboCounterBank bank(4);
  bank.RecordLookup(2, /*miss=*/true);
  bank.RecordLookup(2, /*miss=*/false);
  bank.RecordLookup(0, /*miss=*/false);
  EXPECT_EQ(bank.events(2).lookups, 2u);
  EXPECT_EQ(bank.events(2).misses, 1u);
  EXPECT_EQ(bank.events(0).lookups, 1u);
  EXPECT_EQ(bank.events(0).misses, 0u);
  EXPECT_EQ(bank.events(1).lookups, 0u);
}

TEST(CboTest, RecordsDmaFills) {
  CboCounterBank bank(2);
  bank.RecordDmaFill(1);
  bank.RecordDmaFill(1);
  EXPECT_EQ(bank.events(1).dma_fills, 2u);
  EXPECT_EQ(bank.events(0).dma_fills, 0u);
}

TEST(CboTest, SnapshotDeltaIsolatesAWindow) {
  CboCounterBank bank(3);
  bank.RecordLookup(0, false);
  const auto before = bank.Snapshot();
  bank.RecordLookup(0, false);
  bank.RecordLookup(2, true);
  bank.RecordLookup(2, true);
  const auto after = bank.Snapshot();
  const auto delta = CboCounterBank::LookupDelta(before, after);
  EXPECT_EQ(delta, (std::vector<std::uint64_t>{1, 0, 2}));
}

TEST(CboTest, DeltaRejectsMismatchedSnapshots) {
  CboCounterBank a(2);
  CboCounterBank b(3);
  EXPECT_THROW((void)CboCounterBank::LookupDelta(a.Snapshot(), b.Snapshot()),
               std::invalid_argument);
}

TEST(CboTest, ResetClearsEverything) {
  CboCounterBank bank(2);
  bank.RecordLookup(0, true);
  bank.RecordDmaFill(1);
  bank.Reset();
  EXPECT_EQ(bank.events(0).lookups, 0u);
  EXPECT_EQ(bank.events(0).misses, 0u);
  EXPECT_EQ(bank.events(1).dma_fills, 0u);
}

TEST(CboTest, LlcDrivesCountersPerSlice) {
  SlicedLlc::Config config;
  config.num_sets = 64;
  config.num_ways = 4;
  SlicedLlc llc(config, HaswellSliceHash());
  // Every lookup shows up on exactly the slice the hash selects.
  std::uint64_t total = 0;
  for (PhysAddr line = 0; line < 512 * 64; line += 64) {
    (void)llc.LookupAndTouch(line);
    ++total;
  }
  std::uint64_t counted = 0;
  for (SliceId s = 0; s < 8; ++s) {
    counted += llc.cbo().events(s).lookups;
  }
  EXPECT_EQ(counted, total);
}

}  // namespace
}  // namespace cachedir
