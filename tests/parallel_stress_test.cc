// Concurrency stress for the deterministic parallel bench harness.
//
// Runs RunRepetitions / ParallelFor with deliberately oversubscribed thread
// counts (far more workers than cores) and asserts the merged output is
// bit-identical to the serial path. In a plain build this checks the
// determinism contract; under -DCACHEDIR_SANITIZE=thread the same test is
// the TSan stress: every worker builds a real MemoryHierarchy and hammers
// shared-looking (but per-repetition) state, so any accidental sharing in
// the harness or the simulator shows up as a reported race.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <numeric>
#include <optional>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/cache/hierarchy.h"
#include "src/hash/presets.h"
#include "src/mem/hugepage.h"
#include "src/sim/epoch_engine.h"
#include "src/sim/machine.h"
#include "src/sim/rng.h"

namespace cachedir {
namespace {

// Forces the harness to a specific worker count for the duration of a scope.
class ScopedThreadEnv {
 public:
  explicit ScopedThreadEnv(const char* value) {
    // Saves/restores the harness knob this scope itself overrides; worker
    // count never reaches a simulated quantity. detlint: allow(nondet-env)
    const char* old = std::getenv("CACHEDIR_BENCH_THREADS");
    had_old_ = old != nullptr;
    if (had_old_) {
      old_ = old;
    }
    setenv("CACHEDIR_BENCH_THREADS", value, 1);
  }
  ~ScopedThreadEnv() {
    if (had_old_) {
      setenv("CACHEDIR_BENCH_THREADS", old_.c_str(), 1);
    } else {
      unsetenv("CACHEDIR_BENCH_THREADS");
    }
  }
  ScopedThreadEnv(const ScopedThreadEnv&) = delete;
  ScopedThreadEnv& operator=(const ScopedThreadEnv&) = delete;

 private:
  bool had_old_ = false;
  std::string old_;
};

// One repetition: a private hierarchy, a private RNG, a mixed read/write/DMA
// access pattern — returns a value that folds in every observable stat, so
// any divergence between runs is caught.
std::uint64_t CoherenceRepetition(std::size_t rep, std::uint64_t seed) {
  MemoryHierarchy hierarchy(HaswellXeonE52667V3(), HaswellSliceHash(), seed);
  HugepageAllocator backing;
  const PhysAddr buf = backing.Allocate(1u << 20, PageSize::k2M).pa;
  Rng rng(seed * 7919 + rep);
  Cycles cycles = 0;
  for (std::size_t i = 0; i < 2000; ++i) {
    const PhysAddr line = buf + rng.UniformIndex((1u << 20) / kCacheLineSize) * kCacheLineSize;
    const CoreId core = static_cast<CoreId>(i % 4);
    if ((i & 15u) == 0) {
      cycles += hierarchy.DmaWrite(line, kCacheLineSize);
    } else if ((i & 3u) == 0) {
      cycles += hierarchy.Write(core, line).cycles;
    } else {
      cycles += hierarchy.Read(core, line).cycles;
    }
  }
  std::uint64_t fold = cycles;
  fold = fold * 1315423911u ^ hierarchy.stats().llc_misses;
  fold = fold * 1315423911u ^ hierarchy.stats().dma_line_writes;
  return fold;
}

TEST(ParallelStress, OversubscribedRepetitionsMatchSerialBitForBit) {
  constexpr std::size_t kReps = 48;
  constexpr std::uint64_t kSeed = 1234;

  std::vector<std::uint64_t> serial;
  {
    ScopedThreadEnv env("1");
    serial = RunRepetitions(kReps, kSeed, CoherenceRepetition);
  }
  ASSERT_EQ(serial.size(), kReps);

  // 64 workers on a machine with far fewer cores: maximal interleaving.
  for (const char* threads : {"4", "64"}) {
    ScopedThreadEnv env(threads);
    const std::vector<std::uint64_t> parallel = RunRepetitions(kReps, kSeed, CoherenceRepetition);
    EXPECT_EQ(parallel, serial) << "threads=" << threads;
  }
}

TEST(ParallelStress, ParallelForRunsEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 1000;
  ScopedThreadEnv env("32");
  std::vector<std::uint64_t> hits(kN, 0);
  // Each index owns its slot, per the harness contract.
  ParallelFor(kN, [&](std::size_t i) { hits[i] += i + 1; });
  std::uint64_t sum = std::accumulate(hits.begin(), hits.end(), std::uint64_t{0});
  EXPECT_EQ(sum, kN * (kN + 1) / 2);
}

TEST(ParallelStress, RepeatedOversubscribedRunsAreIdentical) {
  ScopedThreadEnv env("64");
  const auto a = RunRepetitions(16, 99, CoherenceRepetition);
  const auto b = RunRepetitions(16, 99, CoherenceRepetition);
  EXPECT_EQ(a, b);
}

// In-run parallelism: ONE simulated run sharded across epoch-engine workers
// (docs/architecture.md §14), as opposed to the per-repetition parallelism
// above. The stream mixes core-partitioned lines (windows commit
// speculatively) with hot shared lines and DMA (windows conflict and replay
// serially), so worker phase 1, the sliced phase 2 merge, and the
// rollback path all run under contention. Under -DCACHEDIR_SANITIZE=thread
// this is the TSan stress for the engine's barriers, journals and merge
// queues; in any build the fold must match the serial engine bit for bit.
std::uint64_t EngineRun(std::size_t engine_threads, std::uint64_t seed,
                        EpochEngineStats* stats_out = nullptr) {
  MemoryHierarchy hierarchy(HaswellXeonE52667V3(), HaswellSliceHash(), seed);
  std::optional<EpochEngine> engine;
  if (engine_threads > 0) {
    EpochEngineOptions options;
    options.num_threads = engine_threads;
    options.window_line_ops = 512;
    engine.emplace(hierarchy, options);
  }
  HugepageAllocator backing;
  const PhysAddr buf = backing.Allocate(1u << 20, PageSize::k2M).pa;
  const PhysAddr hot = backing.Allocate(64 * kCacheLineSize, PageSize::k2M).pa;
  Rng rng(seed * 104729 + 1);
  Cycles serial_cycles = 0;
  for (std::size_t i = 0; i < 6000; ++i) {
    const CoreId core = static_cast<CoreId>(i % 8);
    if ((i & 31u) == 0) {
      serial_cycles += hierarchy.DmaWriteRange(buf + rng.UniformIndex(256) * 4096, 1536);
    } else if ((i & 7u) == 0) {
      // Hot shared line: cross-core conflict inside a window → abort path.
      serial_cycles += hierarchy.Write(core, hot + rng.UniformIndex(8) * kCacheLineSize).cycles;
    } else {
      // Core-partitioned heap: speculative commit path.
      const PhysAddr line =
          buf + (static_cast<PhysAddr>(core) << 14) + rng.UniformIndex(256) * kCacheLineSize;
      serial_cycles += hierarchy.Read(core, line).cycles;
    }
  }
  // Pure-hit coda: every core re-reads resident private lines, so whole
  // windows are L1 hits and the no-contention fast-commit path runs under
  // the same oversubscribed barriers (and, in the TSan build, under TSan).
  // Long enough that even at the adaptive controller's largest budget
  // (64 x 512 ops) at least one window falls wholly inside the hit stream.
  for (std::size_t lap = 0; lap < 80; ++lap) {
    for (std::size_t c = 0; c < 8; ++c) {
      for (std::size_t i = 0; i < 64; ++i) {
        const PhysAddr line = buf + (static_cast<PhysAddr>(c) << 14) + i * kCacheLineSize;
        serial_cycles += hierarchy.Read(static_cast<CoreId>(c), line).cycles;
      }
    }
  }
  Cycles cycles = serial_cycles;
  if (engine) {
    engine->Flush();
    cycles = engine->total_cycles();  // capture-mode per-op returns were placeholders
    if (stats_out != nullptr) {
      *stats_out = engine->engine_stats();
    }
  }
  std::uint64_t fold = cycles;
  fold = fold * 1315423911u ^ hierarchy.stats().llc_misses;
  fold = fold * 1315423911u ^ hierarchy.stats().l2_misses;
  fold = fold * 1315423911u ^ hierarchy.stats().dma_line_writes;
  return fold;
}

TEST(ParallelStress, OversubscribedEpochEngineMatchesSerialBitForBit) {
  const std::uint64_t serial = EngineRun(/*engine_threads=*/0, /*seed=*/31);
  // Far more engine workers than host cores: maximal barrier interleaving.
  // The per-window verdicts — fast-commit, full replay, abort — and the
  // adaptive controller's trajectory depend only on window content, so the
  // whole stats block must also be identical at every worker count.
  EpochEngineStats reference_stats;
  EXPECT_EQ(EngineRun(/*engine_threads=*/2, /*seed=*/31, &reference_stats), serial);
  EXPECT_GT(reference_stats.fast_commit_windows, 0u)
      << "the pure-hit coda never took the fast-commit path";
  EXPECT_GT(reference_stats.aborted_windows, 0u);
  for (const std::size_t threads : {std::size_t{16}, std::size_t{64}}) {
    EpochEngineStats stats;
    EXPECT_EQ(EngineRun(threads, /*seed=*/31, &stats), serial) << "engine_threads=" << threads;
    EXPECT_EQ(stats.fast_commit_windows, reference_stats.fast_commit_windows);
    EXPECT_EQ(stats.aborted_windows, reference_stats.aborted_windows);
    EXPECT_EQ(stats.windows, reference_stats.windows);
    EXPECT_EQ(stats.window_size_trajectory, reference_stats.window_size_trajectory);
  }
}

TEST(ParallelStress, EpochEngineInsideOversubscribedRepetitions) {
  // Both layers at once: every repetition is itself an engine-sharded run, so
  // engine worker pools from concurrent repetitions coexist on the
  // oversubscribed host.
  ScopedThreadEnv env("16");
  const auto folds = RunRepetitions(
      12, 7, [](std::size_t rep, std::uint64_t seed) { return EngineRun(2 + rep % 3, seed); });
  for (std::size_t rep = 0; rep < folds.size(); ++rep) {
    // RunRepetitions hands the callback base_seed + rep.
    EXPECT_EQ(folds[rep], EngineRun(2 + rep % 3, 7 + rep)) << "rep=" << rep;
  }
}

}  // namespace
}  // namespace cachedir
