// Tests for the DPDK-like substrate: mbuf layout, mempool, CacheDirector
// headroom steering, and the simulated NIC (steering, DDIO, drops).
#include <gtest/gtest.h>

#include <set>

#include "src/cache/hierarchy.h"
#include "src/hash/presets.h"
#include "src/netio/cache_director.h"
#include "src/netio/mempool.h"
#include "src/netio/nic.h"
#include "src/sim/machine.h"
#include "src/slice/placement.h"

namespace cachedir {
namespace {

struct NetioFixture {
  MemoryHierarchy hierarchy{HaswellXeonE52667V3(), HaswellSliceHash(), 1};
  SlicePlacement placement{hierarchy};
  PhysicalMemory memory;
  HugepageAllocator backing;

  CacheDirector MakeDirector(bool enabled) {
    return CacheDirector(HaswellSliceHash(), placement, enabled);
  }
};

TEST(MbufTest, LayoutConstantsAreConsistent) {
  EXPECT_EQ(kMbufStructBytes, 2 * kCacheLineSize);
  EXPECT_GE(kMaxHeadroomBytes, 13 * kCacheLineSize);
  EXPECT_GE(kMbufDataBytes, 1500u);  // an MTU frame always fits
  EXPECT_EQ(kMbufElementBytes, kMbufStructBytes + kMaxHeadroomBytes + kMbufDataBytes);
}

TEST(MempoolTest, AllocatesDistinctAlignedElements) {
  NetioFixture f;
  const CacheDirector director = f.MakeDirector(false);
  Mempool pool(f.backing, 64, director);
  EXPECT_EQ(pool.capacity(), 64u);
  std::set<PhysAddr> seen;
  for (int i = 0; i < 64; ++i) {
    Mbuf* m = pool.Alloc();
    ASSERT_NE(m, nullptr);
    EXPECT_TRUE(seen.insert(m->struct_pa).second);
    EXPECT_TRUE(IsLineAligned(m->struct_pa));
    EXPECT_EQ(m->buf_pa, m->struct_pa + kMbufStructBytes);
  }
  EXPECT_EQ(pool.Alloc(), nullptr);  // exhausted
}

TEST(MempoolTest, FreeRecyclesBuffers) {
  NetioFixture f;
  const CacheDirector director = f.MakeDirector(false);
  Mempool pool(f.backing, 4, director);
  Mbuf* m = pool.Alloc();
  m->data_len = 100;
  pool.Free(m);
  EXPECT_EQ(pool.available(), 4u);
  Mbuf* again = pool.Alloc();
  EXPECT_EQ(again->data_len, 0u);
}

TEST(CacheDirectorTest, DisabledDirectorKeepsDefaultHeadroom) {
  NetioFixture f;
  const CacheDirector director = f.MakeDirector(false);
  Mempool pool(f.backing, 8, director);
  Mbuf* m = pool.Alloc();
  director.ApplyHeadroom(*m, 3);
  EXPECT_EQ(m->headroom, kDefaultHeadroomBytes);
  EXPECT_EQ(m->udata64, 0u);
}

TEST(CacheDirectorTest, SteersDataStartToClosestSlice) {
  NetioFixture f;
  const CacheDirector director = f.MakeDirector(true);
  Mempool pool(f.backing, 128, director);
  const auto hash = HaswellSliceHash();
  for (int i = 0; i < 128; ++i) {
    Mbuf* m = pool.Alloc();
    ASSERT_NE(m, nullptr);
    for (CoreId core = 0; core < 8; ++core) {
      director.ApplyHeadroom(*m, core);
      // On Haswell every slice is reachable within 8 lines, so the data
      // start must land exactly on the core's closest slice (== core id).
      EXPECT_EQ(hash->SliceFor(m->data_pa()), core)
          << "mbuf " << i << " core " << core;
      EXPECT_LE(m->headroom, kMaxHeadroomBytes);
      EXPECT_EQ(m->headroom % kCacheLineSize, 0u);
    }
  }
}

TEST(CacheDirectorTest, HeadroomFitsInFourBitsPerCore) {
  NetioFixture f;
  const CacheDirector director = f.MakeDirector(true);
  Mempool pool(f.backing, 32, director);
  for (int i = 0; i < 32; ++i) {
    Mbuf* m = pool.Alloc();
    for (CoreId core = 0; core < 8; ++core) {
      const std::uint64_t nibble = (m->udata64 >> (4 * core)) & 0xF;
      EXPECT_LE(nibble, CacheDirector::kMaxHeadroomLines);
    }
  }
}

TEST(CacheDirectorTest, WorksOnSkylakeWithBestReachableSlice) {
  MemoryHierarchy hierarchy(SkylakeXeonGold6134(), SkylakeSliceHash(), 1);
  SlicePlacement placement(hierarchy);
  HugepageAllocator backing;
  const CacheDirector director(SkylakeSliceHash(), placement, true);
  Mempool pool(backing, 64, director);
  const auto hash = SkylakeSliceHash();
  for (int i = 0; i < 64; ++i) {
    Mbuf* m = pool.Alloc();
    for (CoreId core = 0; core < 8; ++core) {
      director.ApplyHeadroom(*m, core);
      const SliceId chosen = hash->SliceFor(m->data_pa());
      // The chosen slice must be the best *reachable* one: no headroom
      // within the window may give a strictly lower latency.
      const Cycles chosen_lat = placement.Latency(core, chosen);
      for (std::uint32_t k = 0; k <= CacheDirector::kMaxHeadroomLines; ++k) {
        const SliceId alt = hash->SliceFor(m->buf_pa + k * kCacheLineSize);
        EXPECT_GE(placement.Latency(core, alt), chosen_lat);
      }
    }
  }
}

TEST(CacheDirectorTest, NearSliceSpreadStaysInCheapBandAndSpreads) {
  NetioFixture f;
  CacheDirector::Options options;
  options.enabled = true;
  options.near_tolerance = 8;  // Haswell: covers the whole even-parity band
  const CacheDirector director(HaswellSliceHash(), f.placement, options);
  Mempool pool(f.backing, 256, director);
  const auto hash = HaswellSliceHash();
  for (CoreId core = 0; core < 8; ++core) {
    const Cycles best = f.placement.Latency(core, f.placement.ClosestSlice(core));
    std::set<SliceId> used;
    for (std::size_t i = 0; i < pool.capacity(); ++i) {
      Mbuf m = pool.element(i);
      director.ApplyHeadroom(m, core);
      const SliceId s = hash->SliceFor(m.data_pa());
      // Every placement stays within the tolerance band...
      EXPECT_LE(f.placement.Latency(core, s), best + options.near_tolerance);
      used.insert(s);
    }
    // ...and the load actually spreads over several near slices.
    EXPECT_GE(used.size(), 3u) << "core " << core;
  }
}

TEST(CacheDirectorTest, ZeroToleranceEqualsSingleSliceSteering) {
  NetioFixture f;
  CacheDirector::Options options;
  options.enabled = true;
  options.near_tolerance = 0;
  const CacheDirector spread_zero(HaswellSliceHash(), f.placement, options);
  const CacheDirector classic(HaswellSliceHash(), f.placement, true);
  Mempool pool(f.backing, 64, classic);
  for (std::size_t i = 0; i < 64; ++i) {
    Mbuf a = pool.element(i);
    Mbuf b = pool.element(i);
    spread_zero.PrepareMbuf(a);
    classic.PrepareMbuf(b);
    EXPECT_EQ(a.udata64, b.udata64);
  }
}

WirePacket MakePacket(std::uint64_t id, std::uint32_t size, Nanoseconds t,
                      std::uint16_t src_port = 1000) {
  WirePacket p;
  p.id = id;
  p.size_bytes = size;
  p.tx_time_ns = t;
  p.flow.src_ip = 0x0A000001 + static_cast<std::uint32_t>(id % 97);
  p.flow.dst_ip = 0xC0A80001;
  p.flow.src_port = src_port;
  p.flow.dst_port = 80;
  return p;
}

TEST(SimNicTest, DeliversIntoRssQueueAndDmaWritesLlc) {
  NetioFixture f;
  const CacheDirector director = f.MakeDirector(true);
  Mempool pool(f.backing, 64, director);
  SimNic::Config config;
  config.num_queues = 8;
  SimNic nic(config, f.hierarchy, f.memory, pool, director);

  const WirePacket p = MakePacket(1, 64, 100.0);
  const std::size_t queue = nic.QueueForPacket(p);
  EXPECT_TRUE(nic.Deliver(p));
  ASSERT_FALSE(nic.RxEmpty(queue));
  Mbuf* m = nic.RxPop(queue);
  ASSERT_NE(m, nullptr);
  // Header was DMA'd through DDIO: present in LLC.
  EXPECT_TRUE(f.hierarchy.llc().Contains(m->data_pa()));
  // Header bytes are readable from simulated memory.
  const ParsedHeader h = ReadPacketHeader(f.memory, m->data_pa());
  EXPECT_EQ(h.flow, p.flow);
  EXPECT_DOUBLE_EQ(h.timestamp_ns, p.tx_time_ns);
  // CacheDirector placed the header in the consuming core's slice.
  EXPECT_EQ(f.hierarchy.llc().SliceOf(m->data_pa()), SimNic::CoreForQueue(queue));
  nic.Transmit(m);
  EXPECT_EQ(pool.available(), pool.capacity());
}

TEST(SimNicTest, RssSteeringIsDeterministicPerFlow) {
  NetioFixture f;
  const CacheDirector director = f.MakeDirector(false);
  Mempool pool(f.backing, 16, director);
  SimNic::Config config;
  SimNic nic(config, f.hierarchy, f.memory, pool, director);
  const WirePacket p = MakePacket(1, 64, 0.0);
  const std::size_t q = nic.QueueForPacket(p);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(nic.QueueForPacket(p), q);
  }
}

TEST(SimNicTest, FlowDirectorBalancesNewFlows) {
  NetioFixture f;
  const CacheDirector director = f.MakeDirector(false);
  Mempool pool(f.backing, 16, director);
  SimNic::Config config;
  config.steering = NicSteering::kFlowDirector;
  config.num_queues = 4;
  SimNic nic(config, f.hierarchy, f.memory, pool, director);
  std::vector<std::size_t> counts(4, 0);
  for (std::uint64_t i = 0; i < 16; ++i) {
    WirePacket p = MakePacket(i, 64, 0.0, static_cast<std::uint16_t>(2000 + i));
    ++counts[nic.QueueForPacket(p)];
  }
  // 16 distinct flows over 4 queues, least-loaded: perfect balance.
  for (const std::size_t c : counts) {
    EXPECT_EQ(c, 4u);
  }
}

TEST(SimNicTest, DropsWhenRingFull) {
  NetioFixture f;
  const CacheDirector director = f.MakeDirector(false);
  Mempool pool(f.backing, 64, director);
  SimNic::Config config;
  config.num_queues = 1;
  config.ring_size = 4;
  SimNic nic(config, f.hierarchy, f.memory, pool, director);
  int delivered = 0;
  for (int i = 0; i < 10; ++i) {
    if (nic.Deliver(MakePacket(i, 64, 0.0))) {
      ++delivered;
    }
  }
  EXPECT_EQ(delivered, 4);
  EXPECT_EQ(nic.queue_stats(0).dropped_ring_full, 6u);
}

TEST(SimNicTest, DropsWhenPoolExhausted) {
  NetioFixture f;
  const CacheDirector director = f.MakeDirector(false);
  Mempool pool(f.backing, 2, director);
  SimNic::Config config;
  config.num_queues = 1;
  config.ring_size = 100;
  SimNic nic(config, f.hierarchy, f.memory, pool, director);
  EXPECT_TRUE(nic.Deliver(MakePacket(0, 64, 0.0)));
  EXPECT_TRUE(nic.Deliver(MakePacket(1, 64, 0.0)));
  EXPECT_FALSE(nic.Deliver(MakePacket(2, 64, 0.0)));
  EXPECT_EQ(nic.queue_stats(0).dropped_no_mbuf, 1u);
}

TEST(SimNicTest, SerializesAtConfiguredRate) {
  NetioFixture f;
  const CacheDirector director = f.MakeDirector(false);
  Mempool pool(f.backing, 64, director);
  SimNic::Config config;
  config.num_queues = 1;
  config.min_packet_gap_ns = 100.0;
  SimNic nic(config, f.hierarchy, f.memory, pool, director);
  // Two packets arriving back-to-back at t=0: second is ready 100 ns after
  // the first.
  (void)nic.Deliver(MakePacket(0, 64, 0.0));
  const Nanoseconds first_ready = nic.RxHead(0).ready_ns;
  (void)nic.RxPop(0);
  (void)nic.Deliver(MakePacket(1, 64, 0.0));
  EXPECT_DOUBLE_EQ(nic.RxHead(0).ready_ns - first_ready, 100.0);
}

TEST(SimNicTest, LargePacketDmaTouchesAllLines) {
  NetioFixture f;
  const CacheDirector director = f.MakeDirector(false);
  Mempool pool(f.backing, 8, director);
  SimNic::Config config;
  config.num_queues = 1;
  SimNic nic(config, f.hierarchy, f.memory, pool, director);
  f.hierarchy.ResetStats();
  (void)nic.Deliver(MakePacket(0, 1500, 0.0));
  // 1500 B from a line-aligned start = 24 lines (paper §8: "~24 cache
  // lines" per MTU frame through DDIO).
  EXPECT_EQ(f.hierarchy.stats().dma_line_writes, 24u);
}

TEST(SimNicTest, TxSerializesAtLineRateAndReclaimsLazily) {
  NetioFixture f;
  const CacheDirector director = f.MakeDirector(false);
  Mempool pool(f.backing, 8, director);
  SimNic::Config config;
  config.num_queues = 1;
  config.tx_line_rate_gbps = 100.0;
  SimNic nic(config, f.hierarchy, f.memory, pool, director);

  Mbuf* a = pool.Alloc();
  a->data_len = 1500;
  Mbuf* b = pool.Alloc();
  b->data_len = 1500;
  // Both handed to TX at t=0: the second departs one wire time later.
  const Nanoseconds done_a = nic.TransmitAt(a, 0.0);
  const Nanoseconds done_b = nic.TransmitAt(b, 0.0);
  const double wire = (1500.0 + 20.0) * 8.0 / 100.0;  // 121.6 ns
  EXPECT_NEAR(done_a, wire, 1e-9);
  EXPECT_NEAR(done_b, 2 * wire, 1e-9);
  // Buffers are still in flight until the wire finishes them.
  EXPECT_EQ(nic.tx_in_flight(), 2u);
  EXPECT_EQ(pool.available(), 6u);
  nic.ReclaimTx(done_a);
  EXPECT_EQ(nic.tx_in_flight(), 1u);
  nic.FlushTx();
  EXPECT_EQ(pool.available(), 8u);
}

TEST(SimNicTest, IdleTxDepartsImmediatelyAfterWireTime) {
  NetioFixture f;
  const CacheDirector director = f.MakeDirector(false);
  Mempool pool(f.backing, 4, director);
  SimNic::Config config;
  config.num_queues = 1;
  SimNic nic(config, f.hierarchy, f.memory, pool, director);
  Mbuf* m = pool.Alloc();
  m->data_len = 64;
  const Nanoseconds done = nic.TransmitAt(m, 5000.0);  // idle egress
  EXPECT_NEAR(done, 5000.0 + 84.0 * 8.0 / 100.0, 1e-9);
  nic.FlushTx();
}

TEST(SimNicTest, RejectsBadConfig) {
  NetioFixture f;
  const CacheDirector director = f.MakeDirector(false);
  Mempool pool(f.backing, 8, director);
  SimNic::Config config;
  config.num_queues = 0;
  EXPECT_THROW(SimNic(config, f.hierarchy, f.memory, pool, director), std::invalid_argument);
  config.num_queues = 100;  // more queues than cores
  EXPECT_THROW(SimNic(config, f.hierarchy, f.memory, pool, director), std::invalid_argument);
}

}  // namespace
}  // namespace cachedir
