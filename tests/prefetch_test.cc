// Tests for the L2 next-line hardware prefetcher (paper §8 discusses how
// prefetching interacts with slice-aware, non-contiguous layouts).
#include <gtest/gtest.h>

#include "src/cache/hierarchy.h"
#include "src/hash/presets.h"
#include "src/sim/machine.h"

namespace cachedir {
namespace {

MemoryHierarchy MakeWithPrefetch(bool enabled) {
  MachineSpec spec = HaswellXeonE52667V3();
  spec.l2_next_line_prefetch = enabled;
  return MemoryHierarchy(spec, HaswellSliceHash(), 1);
}

TEST(PrefetchTest, DisabledByDefaultInPresets) {
  EXPECT_FALSE(HaswellXeonE52667V3().l2_next_line_prefetch);
  EXPECT_FALSE(SkylakeXeonGold6134().l2_next_line_prefetch);
}

TEST(PrefetchTest, SequentialStreamHitsL2AfterFirstMiss) {
  auto h = MakeWithPrefetch(true);
  const PhysAddr base = 0x100000;
  ASSERT_EQ(h.Read(0, base).level, ServedBy::kDram);
  // The next line was prefetched into L2 in the background.
  const auto r = h.Read(0, base + kCacheLineSize);
  EXPECT_EQ(r.level, ServedBy::kL2);
  EXPECT_GE(h.stats().prefetch_hits, 1u);
}

TEST(PrefetchTest, WithoutPrefetchSequentialStreamMissesEveryLine) {
  auto h = MakeWithPrefetch(false);
  const PhysAddr base = 0x100000;
  (void)h.Read(0, base);
  EXPECT_EQ(h.Read(0, base + kCacheLineSize).level, ServedBy::kDram);
  EXPECT_EQ(h.stats().prefetches_issued, 0u);
}

TEST(PrefetchTest, SequentialThroughputImprovesSubstantially) {
  auto with = MakeWithPrefetch(true);
  auto without = MakeWithPrefetch(false);
  const auto stream = [](MemoryHierarchy& h) {
    Cycles total = 0;
    for (PhysAddr a = 0; a < (4u << 20); a += kCacheLineSize) {
      total += h.Read(0, a).cycles;
    }
    return total;
  };
  const Cycles fast = stream(with);
  const Cycles slow = stream(without);
  // Every other DRAM access is hidden: at least 40% fewer cycles.
  EXPECT_LT(static_cast<double>(fast), 0.6 * static_cast<double>(slow));
}

TEST(PrefetchTest, RandomAccessGainsLittle) {
  auto with = MakeWithPrefetch(true);
  auto without = MakeWithPrefetch(false);
  const auto random_walk = [](MemoryHierarchy& h) {
    Rng rng(3);
    Cycles total = 0;
    for (int i = 0; i < 50000; ++i) {
      total += h.Read(0, rng.UniformU64(0, (256u << 20)) & ~PhysAddr{63}).cycles;
    }
    return total;
  };
  const double fast = static_cast<double>(random_walk(with));
  const double slow = static_cast<double>(random_walk(without));
  EXPECT_NEAR(fast, slow, slow * 0.02);  // within noise
}

TEST(PrefetchTest, PrefetchAccountingIsConsistent) {
  auto h = MakeWithPrefetch(true);
  for (PhysAddr a = 0; a < (1u << 20); a += kCacheLineSize) {
    (void)h.Read(2, a);
  }
  const HierarchyStats& s = h.stats();
  EXPECT_GT(s.prefetches_issued, 0u);
  EXPECT_LE(s.prefetch_hits, s.prefetches_issued);
  // A pure sequential stream should consume nearly every prefetch.
  EXPECT_GT(s.prefetch_hits, s.prefetches_issued * 9 / 10);
}

// Regression: a prefetch issued before a flush must not survive it. The
// prefetched flag used to live in a side set that FlushAll never cleared, so
// a line prefetched in one experiment repetition could count a bogus
// prefetch_hit in the next.
TEST(PrefetchTest, FlushAllDropsPendingPrefetchState) {
  auto h = MakeWithPrefetch(true);
  const PhysAddr base = 0x100000;
  ASSERT_EQ(h.Read(0, base).level, ServedBy::kDram);  // issues prefetch of base+64
  ASSERT_EQ(h.stats().prefetches_issued, 1u);
  h.FlushAll();
  EXPECT_EQ(h.directory().size(), 0u);

  // Demand-fetch the prefetched line after the flush: it comes from DRAM
  // (so no prefetch hit here)...
  const PhysAddr target = base + kCacheLineSize;
  ASSERT_EQ(h.Read(0, target).level, ServedBy::kDram);
  // ...then evict it from L1 (conflicting lines at the L1 set stride) while
  // it stays in L2, and demand it again: an L2 hit. Without the flush fix
  // the stale flag from before the FlushAll counts it as a prefetch hit.
  const std::size_t l1_span =
      h.spec().l1.num_sets() * kCacheLineSize;  // same-set stride in bytes
  for (std::size_t k = 1; k <= h.spec().l1.ways + 1; ++k) {
    (void)h.Read(0, target + k * l1_span);
  }
  ASSERT_EQ(h.Read(0, target).level, ServedBy::kL2);
  EXPECT_EQ(h.stats().prefetch_hits, 0u);
}

TEST(PrefetchTest, FlushLineDropsPendingPrefetchState) {
  auto h = MakeWithPrefetch(true);
  const PhysAddr base = 0x200000;
  (void)h.Read(0, base);  // issues prefetch of base+64
  const PhysAddr target = base + kCacheLineSize;
  h.FlushLine(target);
  ASSERT_EQ(h.Read(0, target).level, ServedBy::kDram);
  const std::size_t l1_span = h.spec().l1.num_sets() * kCacheLineSize;
  for (std::size_t k = 1; k <= h.spec().l1.ways + 1; ++k) {
    (void)h.Read(0, target + k * l1_span);
  }
  ASSERT_EQ(h.Read(0, target).level, ServedBy::kL2);
  EXPECT_EQ(h.stats().prefetch_hits, 0u);
}

TEST(PrefetchTest, WorksInVictimModeToo) {
  MachineSpec spec = SkylakeXeonGold6134();
  spec.l2_next_line_prefetch = true;
  MemoryHierarchy h(spec, SkylakeSliceHash(), 1);
  (void)h.Read(0, 0x200000);
  EXPECT_EQ(h.Read(0, 0x200000 + kCacheLineSize).level, ServedBy::kL2);
}

TEST(PrefetchTest, StatsBalanceStillHoldsWithPrefetchOn) {
  auto h = MakeWithPrefetch(true);
  h.ResetStats();
  Rng rng(5);
  std::uint64_t ops = 0;
  for (int i = 0; i < 20000; ++i) {
    (void)h.Read(0, rng.UniformU64(0, 2u << 20));
    ++ops;
  }
  const HierarchyStats& s = h.stats();
  EXPECT_EQ(s.l1_hits + s.l1_misses, ops);
  EXPECT_EQ(s.l2_hits + s.l2_misses, s.l1_misses);
  EXPECT_EQ(s.llc_hits + s.llc_misses, s.l2_misses);
}

}  // namespace
}  // namespace cachedir
