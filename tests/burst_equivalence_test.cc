// Burst/scalar equivalence property for the NFV dataplane: the burst path
// (NfvRuntime with Config::burst, drain-phase RxPopBurst, batched latency
// records, ServiceChain::ProcessBurst, mempool Alloc/FreeBurst) only
// restructures host-side work — simulated results must stay bit-identical to
// the packet-at-a-time reference path. Two complete DuTs (same spec, hash,
// seeds, traffic) run the same wire stream with burst on and off; per-packet
// latencies, drop decisions, hierarchy stats and per-slice CBo counters must
// agree exactly, across randomized chains x both mempool kinds x
// CacheDirector on/off, on both machine organisations.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/cache/hierarchy.h"
#include "src/hash/presets.h"
#include "src/mem/hugepage.h"
#include "src/mem/physical_memory.h"
#include "src/netio/cache_director.h"
#include "src/netio/mempool.h"
#include "src/netio/nic.h"
#include "src/netio/sorted_mempool.h"
#include "src/nfv/chain.h"
#include "src/nfv/elements.h"
#include "src/nfv/runtime.h"
#include "src/sim/machine.h"
#include "src/sim/rng.h"
#include "src/slice/placement.h"
#include "src/trace/latency_recorder.h"
#include "src/trace/traffic_gen.h"

namespace cachedir {
namespace {

// Shrunken LLC (as in batch_equivalence_test): evictions, back-invalidation
// and DDIO-partition wrap start within a few thousand packets.
MachineSpec WithSmallLlc(MachineSpec spec) {
  spec.llc_slice.size_bytes = 128 * spec.llc_slice.ways * kCacheLineSize;  // 128 sets
  return spec;
}

struct StackParams {
  bool skylake = false;
  bool sorted_pool = false;
  bool cache_director = false;
  std::uint64_t chain_seed = 0;  // selects the randomized chain composition
};

// One complete DuT: hierarchy, pool, NIC, chain, runtime.
class NfvStack {
 public:
  NfvStack(const StackParams& params, bool burst) {
    spec_ = WithSmallLlc(params.skylake ? SkylakeXeonGold6134() : HaswellXeonE52667V3());
    hash_ = params.skylake ? SkylakeSliceHash() : HaswellSliceHash();
    hierarchy_ = std::make_unique<MemoryHierarchy>(spec_, hash_, /*seed=*/23);
    placement_ = std::make_unique<SlicePlacement>(*hierarchy_);
    director_ =
        std::make_unique<CacheDirector>(hash_, *placement_, /*enabled=*/params.cache_director);
    constexpr std::size_t kMbufs = 2048;
    if (params.sorted_pool) {
      pool_ = std::make_unique<SortedMempoolSet>(backing_, kMbufs, hash_, *placement_);
    } else {
      pool_ = std::make_unique<Mempool>(backing_, kMbufs, *director_);
    }
    SimNic::Config nic_config;
    nic_config.num_queues = 4;
    nic_config.ring_size = 256;
    nic_ = std::make_unique<SimNic>(nic_config, *hierarchy_, memory_, *pool_, *director_);
    BuildChain(params.chain_seed);
    NfvRuntime::Config config;
    config.burst = burst;
    runtime_ = std::make_unique<NfvRuntime>(config, *hierarchy_, *nic_, chain_);
  }

  void Run(std::span<const WirePacket> packets) { runtime_->Run(packets, &recorder_); }

  const MachineSpec& spec() const { return spec_; }
  const MemoryHierarchy& hierarchy() const { return *hierarchy_; }
  const SimNic& nic() const { return *nic_; }
  const NfvRuntime& runtime() const { return *runtime_; }
  const LatencyRecorder& recorder() const { return recorder_; }
  ServiceChain& chain() { return chain_; }

 private:
  void BuildChain(std::uint64_t chain_seed) {
    // Randomized chain: 1..3 elements drawn from the element zoo, same draw
    // sequence for both stacks (seeded Rng).
    Rng rng(chain_seed);
    const std::size_t length = 1 + rng.UniformIndex(3);
    for (std::size_t i = 0; i < length; ++i) {
      switch (rng.UniformIndex(4)) {
        case 0:
          chain_.Append(std::make_unique<MacSwap>(*hierarchy_, memory_));
          break;
        case 1: {
          IpRouter::Params params;
          params.num_routes = 512;
          params.seed = chain_seed + i;
          chain_.Append(std::make_unique<IpRouter>(*hierarchy_, memory_, backing_, params));
          break;
        }
        case 2:
          chain_.Append(std::make_unique<Napt>(*hierarchy_, memory_, backing_, Napt::Params{}));
          break;
        default:
          chain_.Append(
              std::make_unique<LoadBalancer>(*hierarchy_, memory_, backing_, LoadBalancer::Params{}));
          break;
      }
    }
  }

  MachineSpec spec_;
  std::shared_ptr<const SliceHash> hash_;
  std::unique_ptr<MemoryHierarchy> hierarchy_;
  std::unique_ptr<SlicePlacement> placement_;
  std::unique_ptr<CacheDirector> director_;
  PhysicalMemory memory_;
  HugepageAllocator backing_;
  std::unique_ptr<MbufSource> pool_;
  std::unique_ptr<SimNic> nic_;
  ServiceChain chain_;
  std::unique_ptr<NfvRuntime> runtime_;
  LatencyRecorder recorder_;
};

void ExpectStacksIdentical(NfvStack& burst, NfvStack& scalar) {
  // Per-packet latency samples, in delivery order, bit-identical.
  const std::vector<double>& a = burst.recorder().latencies_us().values();
  const std::vector<double>& b = scalar.recorder().latencies_us().values();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "latency sample " << i << " diverged";
  }
  EXPECT_EQ(burst.recorder().delivered(), scalar.recorder().delivered());
  EXPECT_EQ(burst.recorder().drops(), scalar.recorder().drops());
  EXPECT_EQ(burst.recorder().ThroughputGbps(), scalar.recorder().ThroughputGbps());

  // Drop decisions: runtime counters and every NIC drop class.
  EXPECT_EQ(burst.runtime().packets_processed(), scalar.runtime().packets_processed());
  EXPECT_EQ(burst.runtime().packets_dropped(), scalar.runtime().packets_dropped());
  EXPECT_EQ(burst.runtime().CompletionTimeNs(), scalar.runtime().CompletionTimeNs());
  const NicQueueStats nic_a = burst.nic().TotalStats();
  const NicQueueStats nic_b = scalar.nic().TotalStats();
  EXPECT_EQ(nic_a.delivered, nic_b.delivered);
  EXPECT_EQ(nic_a.dropped_ring_full, nic_b.dropped_ring_full);
  EXPECT_EQ(nic_a.dropped_no_mbuf, nic_b.dropped_no_mbuf);
  EXPECT_EQ(nic_a.dropped_ingress, nic_b.dropped_ingress);

  // Hierarchy stats and per-slice CBo counters.
  ASSERT_EQ(burst.hierarchy().stats(), scalar.hierarchy().stats());
  for (SliceId s = 0; s < burst.spec().num_slices; ++s) {
    ASSERT_EQ(burst.hierarchy().llc().cbo().events(s), scalar.hierarchy().llc().cbo().events(s))
        << "CBo counters diverged on slice " << s;
  }
}

class BurstEquivalenceTest : public ::testing::TestWithParam<StackParams> {};

TEST_P(BurstEquivalenceTest, BurstAndScalarRuntimesStayBitIdentical) {
  const StackParams params = GetParam();
  NfvStack burst(params, /*burst=*/true);
  NfvStack scalar(params, /*burst=*/false);

  // Offered load well above the shrunken DuT's service rate, so queues fill,
  // rings overflow and drop paths run; two Run calls check that state
  // (core clocks, memo, NIC time) persists identically across phases.
  TrafficConfig traffic;
  traffic.rate_gbps = 40.0;
  traffic.num_flows = 64;
  traffic.spacing = TrafficConfig::Spacing::kPoisson;
  traffic.seed = 99 + params.chain_seed;
  TrafficGenerator gen(traffic);
  const std::vector<WirePacket> warm = gen.Generate(3000);
  const std::vector<WirePacket> measured = gen.Generate(9000);

  burst.Run(warm);
  scalar.Run(warm);
  burst.Run(measured);
  scalar.Run(measured);

  // Non-vacuity: the overload must actually exercise the drop paths, or the
  // drop-decision comparison above proves nothing.
  EXPECT_GT(burst.runtime().packets_dropped(), 0u);
  ExpectStacksIdentical(burst, scalar);
}

// Chain-level burst entry point: ProcessBurst on one stack's chain versus
// the per-packet Process loop on the other must produce identical
// ProcessResults and identical hierarchy evolution. Covers the fused
// element overrides (single-element chains delegate the whole burst) and
// the packet-major multi-element path.
TEST_P(BurstEquivalenceTest, ChainProcessBurstMatchesScalarLoop) {
  const StackParams params = GetParam();
  NfvStack burst(params, /*burst=*/true);
  NfvStack scalar(params, /*burst=*/false);

  TrafficConfig traffic;
  traffic.rate_gbps = 10.0;
  traffic.seed = 7 + params.chain_seed;
  TrafficGenerator gen(traffic);
  const std::vector<WirePacket> packets = gen.Generate(500);
  burst.Run(packets);
  scalar.Run(packets);
  ExpectStacksIdentical(burst, scalar);
}

std::string ParamName(const ::testing::TestParamInfo<StackParams>& info) {
  const StackParams& p = info.param;
  std::string name = p.skylake ? "Skylake" : "Haswell";
  name += p.sorted_pool ? "SortedPool" : "Mempool";
  name += p.cache_director ? "Director" : "NoDirector";
  name += "Chain" + std::to_string(p.chain_seed);
  return name;
}

std::vector<StackParams> AllParams() {
  std::vector<StackParams> params;
  for (const bool skylake : {false, true}) {
    for (const bool sorted_pool : {false, true}) {
      for (const bool director : {false, true}) {
        for (const std::uint64_t chain_seed : {1u, 2u, 3u}) {
          params.push_back(StackParams{skylake, sorted_pool, director, chain_seed});
        }
      }
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(Stacks, BurstEquivalenceTest, ::testing::ValuesIn(AllParams()),
                         ParamName);

}  // namespace
}  // namespace cachedir
