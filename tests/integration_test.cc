// Cross-module integration tests: full-pipeline determinism, traffic
// conservation across NIC + runtime under many configurations, and the
// headline end-to-end behaviours (CacheDirector helps under load; placement,
// allocator, NIC and chain compose correctly).
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "src/hash/presets.h"
#include "src/netio/nic.h"
#include "src/nfv/chain.h"
#include "src/nfv/elements.h"
#include "src/nfv/runtime.h"
#include "src/sim/machine.h"
#include "src/slice/placement.h"
#include "src/trace/traffic_gen.h"

namespace cachedir {
namespace {

struct Pipeline {
  MemoryHierarchy hierarchy;
  SlicePlacement placement;
  PhysicalMemory memory;
  HugepageAllocator backing;
  CacheDirector director;
  Mempool pool;
  SimNic nic;
  ServiceChain chain;
  NfvRuntime runtime;

  Pipeline(bool cache_director, NicSteering steering, bool stateful, std::uint64_t seed,
           std::size_t ring_size = 512)
      : hierarchy(HaswellXeonE52667V3(), HaswellSliceHash(), seed),
        placement(hierarchy),
        director(HaswellSliceHash(), placement, cache_director),
        pool(backing, 8192, director),
        nic(MakeNicConfig(steering, ring_size), hierarchy, memory, pool, director),
        runtime(NfvRuntime::Config{}, hierarchy, nic, chain) {
    if (stateful) {
      IpRouter::Params router;
      router.num_routes = 512;
      router.hw_offloaded = true;
      router.seed = seed;
      chain.Append(std::make_unique<IpRouter>(hierarchy, memory, backing, router));
      chain.Append(std::make_unique<Napt>(hierarchy, memory, backing, Napt::Params{}));
      chain.Append(
          std::make_unique<LoadBalancer>(hierarchy, memory, backing, LoadBalancer::Params{}));
    } else {
      chain.Append(std::make_unique<MacSwap>(hierarchy, memory));
    }
  }

  static SimNic::Config MakeNicConfig(NicSteering steering, std::size_t ring_size) {
    SimNic::Config config;
    config.num_queues = 8;
    config.steering = steering;
    config.ring_size = ring_size;
    return config;
  }
};

using ConservationParams = std::tuple<bool, int, bool, double>;  // cd, steering, stateful, gbps

class TrafficConservation : public ::testing::TestWithParam<ConservationParams> {};

TEST_P(TrafficConservation, EveryPacketIsDeliveredOrAccountedAsDropped) {
  const auto [cd, steering_int, stateful, gbps] = GetParam();
  Pipeline p(cd, steering_int == 0 ? NicSteering::kRss : NicSteering::kFlowDirector,
             stateful, /*seed=*/4, /*ring_size=*/64);
  TrafficConfig traffic;
  traffic.size_mode = TrafficConfig::SizeMode::kCampusMix;
  traffic.rate_gbps = gbps;
  traffic.seed = 21;
  TrafficGenerator gen(traffic);
  const auto packets = gen.Generate(6000);

  LatencyRecorder rec;
  p.runtime.Run(packets, &rec);

  // Conservation: offered == recorded deliveries + recorded drops, and the
  // NIC's own books agree.
  EXPECT_EQ(rec.delivered() + rec.drops(), packets.size());
  const NicQueueStats nic_stats = p.nic.TotalStats();
  EXPECT_EQ(nic_stats.delivered, rec.delivered());
  EXPECT_EQ(nic_stats.dropped_ring_full + nic_stats.dropped_no_mbuf +
                nic_stats.dropped_ingress,
            rec.drops());
  // All buffers were returned to the pool.
  EXPECT_EQ(p.pool.available(), p.pool.capacity());
  // Latencies are positive and finite.
  if (rec.delivered() > 0) {
    EXPECT_GT(rec.latencies_us().Min(), 0.0);
    EXPECT_LT(rec.latencies_us().Max(), 1e7);
  }
}

INSTANTIATE_TEST_SUITE_P(Matrix, TrafficConservation,
                         ::testing::Combine(::testing::Bool(),          // CacheDirector
                                            ::testing::Values(0, 1),    // RSS / FlowDirector
                                            ::testing::Bool(),          // fwd / chain
                                            ::testing::Values(5.0, 100.0)));

TEST(PipelineDeterminism, IdenticalSeedsProduceIdenticalResults) {
  const auto run = [] {
    Pipeline p(true, NicSteering::kFlowDirector, true, 7);
    TrafficConfig traffic;
    traffic.rate_gbps = 60.0;
    traffic.seed = 8;
    TrafficGenerator gen(traffic);
    LatencyRecorder rec;
    p.runtime.Run(gen.Generate(5000), &rec);
    return std::tuple{rec.delivered(), rec.latencies_us().Mean(),
                      rec.latencies_us().Percentile(99), rec.ThroughputGbps()};
  };
  EXPECT_EQ(run(), run());
}

TEST(PipelineBehaviour, CacheDirectorReducesChainLatencyUnderLoad) {
  // The headline result, as an invariant: at high load the CacheDirector
  // configuration must have a lower mean and lower p99 than plain DPDK.
  const auto measure = [](bool cd) {
    Pipeline p(cd, NicSteering::kFlowDirector, true, 11);
    TrafficConfig traffic;
    traffic.size_mode = TrafficConfig::SizeMode::kCampusMix;
    traffic.rate_gbps = 100.0;
    traffic.seed = 30;
    TrafficGenerator gen(traffic);
    p.runtime.Run(gen.Generate(3000), nullptr);
    LatencyRecorder rec;
    p.runtime.Run(gen.Generate(12000), &rec);
    return std::pair{rec.latencies_us().Mean(), rec.latencies_us().Percentile(99)};
  };
  const auto [dpdk_mean, dpdk_p99] = measure(false);
  const auto [cd_mean, cd_p99] = measure(true);
  EXPECT_LT(cd_mean, dpdk_mean);
  EXPECT_LT(cd_p99, dpdk_p99);
}

TEST(PipelineBehaviour, CacheDirectorHeaderAlwaysInConsumingCoresBestSlice) {
  // Whitebox invariant across the full RX path: with CacheDirector on, the
  // header line of every delivered packet hashes to the best reachable slice
  // of the queue's core at the moment the core would read it.
  Pipeline p(true, NicSteering::kRss, false, 13);
  TrafficConfig traffic;
  traffic.rate_gbps = 20.0;
  traffic.seed = 14;
  TrafficGenerator gen(traffic);
  const auto hash = HaswellSliceHash();
  for (const WirePacket& packet : gen.Generate(2000)) {
    const std::size_t queue = p.nic.QueueForPacket(packet);
    if (!p.nic.Deliver(packet)) {
      continue;
    }
    Mbuf* m = p.nic.RxPop(queue);
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(hash->SliceFor(m->data_pa()), SimNic::CoreForQueue(queue));
    p.nic.Transmit(m);
  }
}

TEST(PipelineBehaviour, StatefulChainRewritesHeadersEndToEnd) {
  Pipeline p(false, NicSteering::kFlowDirector, true, 17);
  TrafficConfig traffic;
  traffic.rate_gbps = 5.0;
  traffic.seed = 18;
  traffic.num_flows = 16;
  TrafficGenerator gen(traffic);
  const auto packets = gen.Generate(64);

  for (const WirePacket& packet : packets) {
    const std::size_t queue = p.nic.QueueForPacket(packet);
    ASSERT_TRUE(p.nic.Deliver(packet));
    Mbuf* m = p.nic.RxPop(queue);
    const ProcessResult r = p.chain.Process(SimNic::CoreForQueue(queue), *m);
    ASSERT_FALSE(r.drop);
    const ParsedHeader h = ReadPacketHeader(p.memory, m->data_pa());
    // NAPT rewrote the source, the LB rewrote the destination, the router
    // decremented TTL.
    EXPECT_NE(h.flow.src_ip, packet.flow.src_ip);
    EXPECT_NE(h.flow.dst_ip, packet.flow.dst_ip);
    EXPECT_EQ(h.ttl, 63);
    p.nic.Transmit(m);
  }
}

}  // namespace
}  // namespace cachedir
