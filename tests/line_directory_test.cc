// Unit tests for the sharded flat-hash line directory: reference-model
// churn (insert/find/erase against std::unordered_map), growth past the
// initial capacity, backward-shift deletion under collision-heavy load, and
// wbinvd-style Clear.
#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "src/cache/line_directory.h"
#include "src/sim/rng.h"

namespace cachedir {
namespace {

PhysAddr LineAt(std::uint64_t index) { return index * kCacheLineSize; }

TEST(LineDirectoryTest, StartsEmpty) {
  LineDirectory dir;
  EXPECT_EQ(dir.size(), 0u);
  EXPECT_EQ(dir.Find(LineAt(1)), nullptr);
}

TEST(LineDirectoryTest, GetOrCreateInsertsDefaultEntry) {
  LineDirectory dir;
  LineDirectoryEntry& entry = dir.GetOrCreate(LineAt(7));
  EXPECT_TRUE(entry.empty());
  EXPECT_EQ(dir.size(), 1u);
  entry.l1_sharers = 0b101;
  const LineDirectoryEntry* found = dir.Find(LineAt(7));
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->l1_sharers, 0b101u);
}

TEST(LineDirectoryTest, GetOrCreateIsIdempotent) {
  LineDirectory dir;
  dir.GetOrCreate(LineAt(3)).l2_sharers = 0xff;
  EXPECT_EQ(dir.GetOrCreate(LineAt(3)).l2_sharers, 0xffu);
  EXPECT_EQ(dir.size(), 1u);
}

TEST(LineDirectoryTest, SubLineAddressesMapToOneEntry) {
  LineDirectory dir;
  dir.GetOrCreate(LineAt(5)).prefetched = true;
  // Any byte of the line resolves to the same entry.
  const LineDirectoryEntry* found = dir.Find(LineAt(5) + 63);
  ASSERT_NE(found, nullptr);
  EXPECT_TRUE(found->prefetched);
}

TEST(LineDirectoryTest, EraseRemovesOnlyTheTarget) {
  LineDirectory dir;
  for (std::uint64_t i = 0; i < 64; ++i) {
    dir.GetOrCreate(LineAt(i)).l1_sharers = i + 1;
  }
  dir.Erase(LineAt(31));
  EXPECT_EQ(dir.size(), 63u);
  EXPECT_EQ(dir.Find(LineAt(31)), nullptr);
  for (std::uint64_t i = 0; i < 64; ++i) {
    if (i == 31) {
      continue;
    }
    const LineDirectoryEntry* found = dir.Find(LineAt(i));
    ASSERT_NE(found, nullptr) << "line " << i << " lost";
    EXPECT_EQ(found->l1_sharers, i + 1);
  }
}

TEST(LineDirectoryTest, EraseOfAbsentLineIsANoOp) {
  LineDirectory dir;
  dir.GetOrCreate(LineAt(1));
  dir.Erase(LineAt(2));
  EXPECT_EQ(dir.size(), 1u);
  EXPECT_NE(dir.Find(LineAt(1)), nullptr);
}

TEST(LineDirectoryTest, GrowsFarPastInitialCapacityWithoutLoss) {
  LineDirectory dir;
  constexpr std::uint64_t kLines = 200000;  // >> 16 shards x 256 slots
  for (std::uint64_t i = 0; i < kLines; ++i) {
    dir.GetOrCreate(LineAt(i)).l2_sharers = i;
  }
  EXPECT_EQ(dir.size(), kLines);
  for (std::uint64_t i = 0; i < kLines; i += 97) {
    const LineDirectoryEntry* found = dir.Find(LineAt(i));
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->l2_sharers, i);
  }
}

TEST(LineDirectoryTest, ClearDropsEverything) {
  LineDirectory dir;
  for (std::uint64_t i = 0; i < 5000; ++i) {
    dir.GetOrCreate(LineAt(i));
  }
  dir.Clear();
  EXPECT_EQ(dir.size(), 0u);
  EXPECT_EQ(dir.Find(LineAt(0)), nullptr);
  // And the directory is reusable after a Clear.
  dir.GetOrCreate(LineAt(9)).l1_dirty = 1;
  EXPECT_EQ(dir.size(), 1u);
}

// Backward-shift deletion is the delicate part of an open-addressed table:
// erasing from the middle of a probe chain must not strand later entries.
// Dense sequential lines plus heavy interleaved erases exercise long chains
// in every shard; the reference map is ground truth.
TEST(LineDirectoryTest, RandomChurnMatchesReferenceMap) {
  LineDirectory dir;
  std::unordered_map<std::uint64_t, std::uint64_t> reference;
  Rng rng(1234);
  constexpr std::uint64_t kUniverse = 8192;
  for (int op = 0; op < 300000; ++op) {
    const std::uint64_t index = rng.UniformIndex(kUniverse);
    const PhysAddr line = LineAt(index);
    const double action = rng.UniformDouble();
    if (action < 0.45) {
      const std::uint64_t value = rng.UniformU64(1, 1u << 30);
      dir.GetOrCreate(line).l1_sharers = value;
      reference[index] = value;
    } else if (action < 0.80) {
      dir.Erase(line);
      reference.erase(index);
    } else {
      const LineDirectoryEntry* found = dir.Find(line);
      const auto it = reference.find(index);
      if (it == reference.end()) {
        ASSERT_EQ(found, nullptr) << "stale entry for line index " << index;
      } else {
        ASSERT_NE(found, nullptr) << "lost entry for line index " << index;
        ASSERT_EQ(found->l1_sharers, it->second);
      }
    }
  }
  EXPECT_EQ(dir.size(), reference.size());
  // Full sweep: every reference entry is present with the right payload.
  // Order-insensitive (per-entry assertions, no output). detlint: allow(unordered-iter)
  for (const auto& [index, value] : reference) {
    const LineDirectoryEntry* found = dir.Find(LineAt(index));
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->l1_sharers, value);
  }
}

TEST(LineDirectoryTest, EntryHelpersReflectMasks) {
  LineDirectoryEntry entry;
  EXPECT_TRUE(entry.empty());
  entry.l1_sharers = 0b0011;
  entry.l2_sharers = 0b0110;
  entry.l1_dirty = 0b0001;
  EXPECT_EQ(entry.sharers(), 0b0111u);
  EXPECT_EQ(entry.dirty(), 0b0001u);
  EXPECT_FALSE(entry.empty());
  entry.l1_sharers = 0;
  entry.l2_sharers = 0;
  entry.l1_dirty = 0;
  EXPECT_TRUE(entry.empty());
  entry.prefetched = true;  // a pending prefetch keeps the entry alive
  EXPECT_FALSE(entry.empty());
}

}  // namespace
}  // namespace cachedir
