// Tests for the §8 hot-data monitoring/migration extension.
#include <gtest/gtest.h>

#include "src/hash/presets.h"
#include "src/sim/machine.h"
#include "src/slice/hot_migrator.h"
#include "src/stats/zipf.h"

namespace cachedir {
namespace {

struct MigratorFixture {
  MemoryHierarchy hierarchy{HaswellXeonE52667V3(), HaswellSliceHash(), 1};
  PhysicalMemory memory;
  HugepageAllocator backing;
  SliceAwareAllocator slice_alloc{backing, HaswellSliceHash()};

  HotDataMigrator Make(std::size_t objects, std::size_t hot, std::uint64_t epoch) {
    HotDataMigrator::Params params;
    params.num_objects = objects;
    params.hot_capacity = hot;
    params.epoch_accesses = epoch;
    params.target_slice = 0;
    return HotDataMigrator(hierarchy, memory, backing, slice_alloc, params);
  }
};

TEST(HotMigratorTest, PromotesTheEpochsHottestObjects) {
  MigratorFixture f;
  HotDataMigrator m = f.Make(1000, 4, 100);
  // Hammer objects 7 and 13; touch others once.
  for (int i = 0; i < 45; ++i) {
    (void)m.Access(0, 7, false);
    (void)m.Access(0, 13, false);
  }
  for (std::uint64_t id = 100; id < 110; ++id) {
    (void)m.Access(0, id, false);
  }
  EXPECT_TRUE(m.IsPromoted(7));
  EXPECT_TRUE(m.IsPromoted(13));
  EXPECT_LE(m.promoted_count(), 4u);
  // Promoted homes live in slice 0.
  const auto hash = HaswellSliceHash();
  EXPECT_EQ(hash->SliceFor(m.HomeOf(7)), 0u);
  EXPECT_EQ(hash->SliceFor(m.HomeOf(13)), 0u);
}

TEST(HotMigratorTest, DemotesWhenTheHotSetDrifts) {
  MigratorFixture f;
  HotDataMigrator m = f.Make(1000, 2, 100);
  for (int i = 0; i < 100; ++i) {
    (void)m.Access(0, 1, false);
  }
  ASSERT_TRUE(m.IsPromoted(1));
  // The hotspot moves to object 2 for a full epoch.
  for (int i = 0; i < 100; ++i) {
    (void)m.Access(0, 2, false);
  }
  EXPECT_TRUE(m.IsPromoted(2));
  EXPECT_FALSE(m.IsPromoted(1));  // demoted back to the cold store
  EXPECT_GE(m.migrations(), 3u);  // promote 1, demote 1, promote 2
}

TEST(HotMigratorTest, DataSurvivesMigrationRoundTrips) {
  MigratorFixture f;
  HotDataMigrator m = f.Make(100, 2, 50);
  // Write a marker into object 5's cold home.
  f.memory.WriteU64(m.HomeOf(5), 0xFEEDFACE);
  for (int i = 0; i < 50; ++i) {
    (void)m.Access(0, 5, false);
  }
  ASSERT_TRUE(m.IsPromoted(5));
  EXPECT_EQ(f.memory.ReadU64(m.HomeOf(5)), 0xFEEDFACEull);  // bytes moved along
  // Demote it by hammering others.
  for (int i = 0; i < 50; ++i) {
    (void)m.Access(0, 6, false);
    (void)m.Access(0, 7, false);
  }
  EXPECT_FALSE(m.IsPromoted(5));
  EXPECT_EQ(f.memory.ReadU64(m.HomeOf(5)), 0xFEEDFACEull);  // and back
}

TEST(HotMigratorTest, StableZipfWorkloadGetsFasterAfterWarmup) {
  MigratorFixture f;
  HotDataMigrator m = f.Make(1 << 16, 1 << 10, 5000);  // 4 MB objects, 64 kB hot
  ZipfGenerator keys(1 << 16, 0.99, 3);
  // Warm epochs: counts accumulate, promotions happen.
  Cycles first_window = 0;
  for (int i = 0; i < 20000; ++i) {
    first_window += m.Access(0, keys.Next(), false);
  }
  Cycles second_window = 0;
  for (int i = 0; i < 20000; ++i) {
    second_window += m.Access(0, keys.Next(), false);
  }
  EXPECT_LT(second_window, first_window);
  EXPECT_GT(m.promoted_count(), 0u);
}

TEST(HotMigratorTest, ValidatesParameters) {
  MigratorFixture f;
  EXPECT_THROW((void)f.Make(0, 1, 10), std::invalid_argument);
  EXPECT_THROW((void)f.Make(10, 20, 10), std::invalid_argument);
  EXPECT_THROW((void)f.Make(10, 2, 0), std::invalid_argument);
  HotDataMigrator m = f.Make(10, 2, 10);
  EXPECT_THROW((void)m.Access(0, 10, false), std::out_of_range);
}

}  // namespace
}  // namespace cachedir
