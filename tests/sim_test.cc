#include <gtest/gtest.h>

#include <set>

#include "src/sim/clock.h"
#include "src/sim/interconnect.h"
#include "src/sim/machine.h"
#include "src/sim/rng.h"
#include "src/sim/types.h"

namespace cachedir {
namespace {

TEST(CpuFrequencyTest, ConvertsCyclesToNanoseconds) {
  const CpuFrequency f(3.2);
  EXPECT_DOUBLE_EQ(f.ToNanoseconds(3200), 1000.0);
  EXPECT_DOUBLE_EQ(f.ToNanoseconds(0), 0.0);
}

TEST(CpuFrequencyTest, ConvertsNanosecondsToCyclesRoundingUp) {
  const CpuFrequency f(3.2);
  EXPECT_EQ(f.ToCycles(1000.0), 3200u);
  EXPECT_EQ(f.ToCycles(0.1), 1u);   // 0.32 cycles occupies a full cycle
  EXPECT_EQ(f.ToCycles(0.0), 0u);
}

TEST(LineHelpersTest, LineBaseMasksOffsetBits) {
  EXPECT_EQ(LineBase(0x1000), 0x1000u);
  EXPECT_EQ(LineBase(0x103F), 0x1000u);
  EXPECT_EQ(LineBase(0x1040), 0x1040u);
  EXPECT_TRUE(IsLineAligned(0x1040));
  EXPECT_FALSE(IsLineAligned(0x1041));
}

TEST(CoreClockTest, AdvancesMonotonically) {
  CoreClock clock;
  EXPECT_EQ(clock.now(), 0u);
  clock.Advance(10);
  EXPECT_EQ(clock.now(), 10u);
  clock.AdvanceTo(5);  // in the past: no-op
  EXPECT_EQ(clock.now(), 10u);
  clock.AdvanceTo(25);
  EXPECT_EQ(clock.now(), 25u);
  clock.Reset();
  EXPECT_EQ(clock.now(), 0u);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformU64(0, 1000), b.UniformU64(0, 1000));
  }
}

TEST(RngTest, UniformIndexStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformIndex(17), 17u);
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(7);
  Rng child = a.Fork();
  // Not a strong statistical claim — just that the fork is usable and not
  // the identical stream.
  bool differs = false;
  Rng b(7);
  Rng child2 = b.Fork();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(child.UniformU64(0, 1 << 30), child2.UniformU64(0, 1 << 30));
  }
  Rng c(8);
  Rng child3 = c.Fork();
  Rng child4 = Rng(7).Fork();
  for (int i = 0; i < 10; ++i) {
    if (child3.UniformU64(0, 1 << 30) != child4.UniformU64(0, 1 << 30)) {
      differs = true;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(RingInterconnectTest, LocalSliceIsFree) {
  RingInterconnect ring(RingInterconnect::Params{});
  for (CoreId c = 0; c < 8; ++c) {
    EXPECT_EQ(ring.SlicePenalty(c, c), 0u);
  }
}

TEST(RingInterconnectTest, PenaltyIsBimodalFromCoreZero) {
  RingInterconnect ring(RingInterconnect::Params{});
  // Even slices share parity with core 0: cheap. Odd slices pay the
  // ring-crossing penalty: expensive. This is the Fig. 5a shape.
  for (SliceId s = 0; s < 8; s += 2) {
    for (SliceId odd = 1; odd < 8; odd += 2) {
      EXPECT_LT(ring.SlicePenalty(0, s), ring.SlicePenalty(0, odd))
          << "even slice " << s << " vs odd slice " << odd;
    }
  }
}

TEST(RingInterconnectTest, PenaltyIsSymmetric) {
  RingInterconnect ring(RingInterconnect::Params{});
  for (CoreId c = 0; c < 8; ++c) {
    for (SliceId s = 0; s < 8; ++s) {
      EXPECT_EQ(ring.SlicePenalty(c, s), ring.SlicePenalty(s, c));
    }
  }
}

TEST(MeshInterconnectTest, UsesManhattanDistance) {
  MeshInterconnect::Params p;
  p.hop_cost = 2;
  p.core_pos = {{0, 0}};
  p.slice_pos = {{0, 0}, {0, 3}, {2, 2}};
  MeshInterconnect mesh(std::move(p));
  EXPECT_EQ(mesh.SlicePenalty(0, 0), 0u);
  EXPECT_EQ(mesh.SlicePenalty(0, 1), 6u);
  EXPECT_EQ(mesh.SlicePenalty(0, 2), 8u);
}

TEST(MachineSpecTest, HaswellGeometryMatchesTable1) {
  const MachineSpec m = HaswellXeonE52667V3();
  EXPECT_EQ(m.num_cores, 8u);
  EXPECT_EQ(m.num_slices, 8u);
  // Table 1: LLC slice 2.5 MB, 20 ways, 2048 sets; L2 256 kB, 8 ways, 512
  // sets; L1 32 kB, 8 ways, 64 sets.
  EXPECT_EQ(m.llc_slice.num_sets(), 2048u);
  EXPECT_EQ(m.llc_slice.ways, 20u);
  EXPECT_EQ(m.l2.num_sets(), 512u);
  EXPECT_EQ(m.l2.ways, 8u);
  EXPECT_EQ(m.l1.num_sets(), 64u);
  EXPECT_EQ(m.l1.ways, 8u);
  EXPECT_EQ(m.inclusion, LlcInclusionPolicy::kInclusive);
}

TEST(MachineSpecTest, SkylakeGeometryMatchesPaperSection6) {
  const MachineSpec m = SkylakeXeonGold6134();
  EXPECT_EQ(m.num_cores, 8u);
  EXPECT_EQ(m.num_slices, 18u);
  EXPECT_EQ(m.llc_slice.size_bytes, 1408u * 1024u);  // 1.375 MB
  EXPECT_EQ(m.llc_slice.ways, 11u);
  EXPECT_EQ(m.l2.size_bytes, 1024u * 1024u);
  EXPECT_EQ(m.inclusion, LlcInclusionPolicy::kVictim);
}

TEST(MachineSpecTest, SkylakePrimarySlicesMatchTable4) {
  const MachineSpec m = SkylakeXeonGold6134();
  const SliceId expected_primary[8] = {0, 4, 8, 12, 10, 14, 3, 15};
  for (CoreId c = 0; c < 8; ++c) {
    // The primary slice is the unique zero-penalty one.
    EXPECT_EQ(m.interconnect->SlicePenalty(c, expected_primary[c]), 0u) << "core " << c;
    int zero_count = 0;
    for (SliceId s = 0; s < 18; ++s) {
      if (m.interconnect->SlicePenalty(c, s) == 0) {
        ++zero_count;
      }
    }
    EXPECT_EQ(zero_count, 1) << "core " << c;
  }
}

TEST(MachineSpecTest, SkylakeSecondarySlicesMatchTable4) {
  const MachineSpec m = SkylakeXeonGold6134();
  const std::set<SliceId> expected[8] = {{2, 6}, {1}, {11}, {13}, {7, 9}, {16}, {5}, {17}};
  const Cycles hop = 2;
  for (CoreId c = 0; c < 8; ++c) {
    std::set<SliceId> at_one_hop;
    for (SliceId s = 0; s < 18; ++s) {
      if (m.interconnect->SlicePenalty(c, s) == hop) {
        at_one_hop.insert(s);
      }
    }
    EXPECT_EQ(at_one_hop, expected[c]) << "core " << c;
  }
}

}  // namespace
}  // namespace cachedir
