// Specialized-kernel equivalence property (docs/architecture.md §13): a
// MemoryHierarchy running a compile-time specialized HierarchyKernel
// (kernel_mode == kAuto) must stay bit-identical — per-line AccessResults,
// batch aggregates, DMA cycle totals, HierarchyStats and per-slice CBo
// counters — to one running the generic runtime-dispatched reference path
// (kernel_mode == kGeneric) under identical traffic. Every cell of the
// instantiation matrix the presets can reach is exercised: three machine
// presets (Haswell XOR hash, Skylake XOR+LUT, Sandy Bridge XOR) × three
// replacement policies × both inclusion modes, plus a modulo-hash
// configuration and the kVirtual fallback (an unrecognised SliceHash
// subclass must select no kernel and still behave).
#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/cache/hierarchy.h"
#include "src/hash/presets.h"
#include "src/hash/slice_hash.h"
#include "src/sim/machine.h"
#include "src/sim/rng.h"

namespace cachedir {
namespace {

// Shrunken LLC (as in batch_equivalence_test): eviction and
// back-invalidation chains start after a few thousand lines.
MachineSpec WithSmallLlc(MachineSpec spec) {
  spec.llc_slice.size_bytes = 128 * spec.llc_slice.ways * kCacheLineSize;  // 128 sets
  return spec;
}

constexpr std::size_t kMaxBatchLines = 64;

struct KernelCase {
  MachineSpec (*preset)();
  std::shared_ptr<const SliceHash> (*hash)();
  ReplacementKind replacement;
  LlcInclusionPolicy inclusion;
  const char* label;
};

std::string CaseName(const ::testing::TestParamInfo<KernelCase>& info) {
  return info.param.label;
}

class KernelEquivalenceTest : public ::testing::TestWithParam<KernelCase> {
 protected:
  void SetUp() override {
    const KernelCase& c = GetParam();
    spec_ = WithSmallLlc(c.preset());
    spec_.replacement = c.replacement;
    spec_.inclusion = c.inclusion;
    hash_ = c.hash();

    MachineSpec generic = spec_;
    generic.kernel_mode = HierarchyKernelMode::kGeneric;
    reference_ = std::make_unique<MemoryHierarchy>(generic, hash_, /*seed=*/23);

    spec_.kernel_mode = HierarchyKernelMode::kAuto;
    subject_ = std::make_unique<MemoryHierarchy>(spec_, hash_, /*seed=*/23);

    ASSERT_FALSE(reference_->uses_specialized_kernel());
#ifndef CACHEDIR_GENERIC_ONLY
    // Every preset × policy combination in this suite is inside the
    // instantiation matrix, so kAuto must land on a specialized kernel
    // (unless the whole tree was built with CACHEDIR_GENERIC_ONLY).
    ASSERT_TRUE(subject_->uses_specialized_kernel())
        << "no kernel selected for " << GetParam().label;
#endif
  }

  void ExpectConverged() {
    ASSERT_EQ(reference_->stats(), subject_->stats());
    for (SliceId s = 0; s < spec_.num_slices; ++s) {
      ASSERT_EQ(reference_->llc().cbo().events(s), subject_->llc().cbo().events(s))
          << "CBo counters diverged on slice " << s;
    }
  }

  void RunScalar(CoreId core, PhysAddr addr, bool is_write) {
    const AccessResult ref =
        is_write ? reference_->Write(core, addr) : reference_->Read(core, addr);
    const AccessResult sub = is_write ? subject_->Write(core, addr) : subject_->Read(core, addr);
    ASSERT_EQ(ref, sub);
  }

  // Identical batch on both; per-line results and aggregates must agree.
  void RunBatch(CoreId core, const AccessBatch& proto, bool is_write) {
    std::array<AccessResult, kMaxBatchLines> ref_lines{};
    std::array<AccessResult, kMaxBatchLines> sub_lines{};
    AccessBatch ref_batch = proto;
    ref_batch.per_line = ref_lines;
    AccessBatch sub_batch = proto;
    sub_batch.per_line = sub_lines;

    const BatchResult ref = is_write ? reference_->WriteRange(core, ref_batch)
                                     : reference_->ReadRange(core, ref_batch);
    const BatchResult sub =
        is_write ? subject_->WriteRange(core, sub_batch) : subject_->ReadRange(core, sub_batch);
    ASSERT_EQ(ref, sub);
    for (std::size_t i = 0; i < ref.lines && i < kMaxBatchLines; ++i) {
      ASSERT_EQ(ref_lines[i], sub_lines[i]) << "per-line result " << i << " diverged";
    }
  }

  void RunDmaRange(PhysAddr addr, std::size_t bytes, bool is_write) {
    const Cycles ref =
        is_write ? reference_->DmaWriteRange(addr, bytes) : reference_->DmaReadRange(addr, bytes);
    const Cycles sub =
        is_write ? subject_->DmaWriteRange(addr, bytes) : subject_->DmaReadRange(addr, bytes);
    ASSERT_EQ(ref, sub);
  }

  // The slice-precomputed overloads (the NIC's per-mbuf LUT path) route
  // through their own kernel entry points; cover them with a correct LUT.
  void RunDmaRangeLut(PhysAddr addr, std::size_t bytes, bool is_write) {
    const PhysAddr first = LineBase(addr);
    const PhysAddr last = LineBase(addr + (bytes == 0 ? 0 : bytes - 1));
    lut_.clear();
    for (PhysAddr line = first; line <= last; line += kCacheLineSize) {
      lut_.push_back(reference_->llc().SliceOf(line));
    }
    const Cycles ref = is_write ? reference_->DmaWriteRange(addr, bytes, lut_)
                                : reference_->DmaReadRange(addr, bytes, lut_);
    const Cycles sub = is_write ? subject_->DmaWriteRange(addr, bytes, lut_)
                                : subject_->DmaReadRange(addr, bytes, lut_);
    ASSERT_EQ(ref, sub);
  }

  void RunDmaLine(PhysAddr addr, bool is_write) {
    const Cycles ref = is_write ? reference_->DmaWriteLine(addr) : reference_->DmaReadLine(addr);
    const Cycles sub = is_write ? subject_->DmaWriteLine(addr) : subject_->DmaReadLine(addr);
    ASSERT_EQ(ref, sub);
  }

  MachineSpec spec_;
  std::shared_ptr<const SliceHash> hash_;
  std::unique_ptr<MemoryHierarchy> reference_;
  std::unique_ptr<MemoryHierarchy> subject_;
  std::vector<SliceId> lut_;
};

TEST_P(KernelEquivalenceTest, RandomizedMixedStreamsStayBitIdentical) {
  Rng rng(987);
  const std::size_t cores = spec_.num_cores;
  const std::size_t llc_lines =
      spec_.num_slices * spec_.llc_slice.num_sets() * spec_.llc_slice.ways;
  const PhysAddr ring = PhysAddr{1} << 30;
  const std::size_t ring_bytes = llc_lines * 4 * kCacheLineSize;
  const PhysAddr heap = PhysAddr{1} << 28;
  const std::size_t heap_bytes = llc_lines * 2 * kCacheLineSize;

  std::vector<PhysAddr> gather;
  gather.reserve(kMaxBatchLines);
  for (int step = 0; step < 2000; ++step) {
    const CoreId core = static_cast<CoreId>(rng.UniformIndex(cores));
    switch (rng.UniformIndex(8)) {
      case 0: {  // scalar read/write
        RunScalar(core, heap + rng.UniformIndex(heap_bytes), rng.Bernoulli(0.4));
        break;
      }
      case 1: {  // contiguous range, packet-sized
        AccessBatch batch;
        batch.addr = heap + rng.UniformIndex(heap_bytes);
        batch.bytes = rng.UniformIndex(1536);
        RunBatch(core, batch, rng.Bernoulli(0.5));
        break;
      }
      case 2: {  // scattered gather with duplicates
        gather.clear();
        const std::size_t n = 1 + rng.UniformIndex(32);
        for (std::size_t i = 0; i < n; ++i) {
          gather.push_back(heap + rng.UniformIndex(heap_bytes));
        }
        AccessBatch batch;
        batch.gather = gather;
        RunBatch(core, batch, rng.Bernoulli(0.5));
        break;
      }
      case 3: {  // NIC RX: DMA write, hashing overload
        RunDmaRange(ring + rng.UniformIndex(ring_bytes), 64 + rng.UniformIndex(1472),
                    /*is_write=*/true);
        break;
      }
      case 4: {  // NIC TX: DMA read, hashing overload
        RunDmaRange(ring + rng.UniformIndex(ring_bytes), 64 + rng.UniformIndex(1472),
                    /*is_write=*/false);
        break;
      }
      case 5: {  // precomputed-slice DMA overloads
        RunDmaRangeLut(ring + rng.UniformIndex(ring_bytes), 64 + rng.UniformIndex(1472),
                       rng.Bernoulli(0.5));
        break;
      }
      case 6: {  // single-line DMA
        RunDmaLine(ring + rng.UniformIndex(ring_bytes), rng.Bernoulli(0.5));
        break;
      }
      case 7: {  // flush a line on both
        const PhysAddr addr = heap + rng.UniformIndex(heap_bytes);
        reference_->FlushLine(addr);
        subject_->FlushLine(addr);
        break;
      }
      default:
        break;
    }
    if ((step & 255) == 255) {
      ExpectConverged();
    }
  }
  ExpectConverged();
}

// The L2 next-line prefetcher ablation runs through the kernels' prefetch
// path; keep it equivalent too.
TEST_P(KernelEquivalenceTest, PrefetcherAblationStaysBitIdentical) {
  MachineSpec spec = spec_;
  spec.l2_next_line_prefetch = true;
  MachineSpec generic = spec;
  generic.kernel_mode = HierarchyKernelMode::kGeneric;
  MemoryHierarchy ref(generic, hash_, /*seed=*/5);
  MemoryHierarchy sub(spec, hash_, /*seed=*/5);

  Rng rng(31);
  const PhysAddr heap = PhysAddr{1} << 27;
  for (int step = 0; step < 3000; ++step) {
    const auto core = static_cast<CoreId>(rng.UniformIndex(spec.num_cores));
    const PhysAddr addr = heap + rng.UniformIndex(1 << 22);
    const bool is_write = rng.Bernoulli(0.3);
    const AccessResult r = is_write ? ref.Write(core, addr) : ref.Read(core, addr);
    const AccessResult s = is_write ? sub.Write(core, addr) : sub.Read(core, addr);
    ASSERT_EQ(r, s);
  }
  ASSERT_EQ(ref.stats(), sub.stats());
}

constexpr KernelCase kCases[] = {
    {&HaswellXeonE52667V3, &HaswellSliceHash, ReplacementKind::kLru,
     LlcInclusionPolicy::kInclusive, "HaswellXorLruInclusive"},
    {&HaswellXeonE52667V3, &HaswellSliceHash, ReplacementKind::kLru, LlcInclusionPolicy::kVictim,
     "HaswellXorLruVictim"},
    {&HaswellXeonE52667V3, &HaswellSliceHash, ReplacementKind::kTreePlru,
     LlcInclusionPolicy::kInclusive, "HaswellXorPlruInclusive"},
    {&HaswellXeonE52667V3, &HaswellSliceHash, ReplacementKind::kTreePlru,
     LlcInclusionPolicy::kVictim, "HaswellXorPlruVictim"},
    {&HaswellXeonE52667V3, &HaswellSliceHash, ReplacementKind::kRandom,
     LlcInclusionPolicy::kInclusive, "HaswellXorRandomInclusive"},
    {&HaswellXeonE52667V3, &HaswellSliceHash, ReplacementKind::kRandom,
     LlcInclusionPolicy::kVictim, "HaswellXorRandomVictim"},
    {&SkylakeXeonGold6134, &SkylakeSliceHash, ReplacementKind::kLru,
     LlcInclusionPolicy::kInclusive, "SkylakeLutLruInclusive"},
    {&SkylakeXeonGold6134, &SkylakeSliceHash, ReplacementKind::kLru, LlcInclusionPolicy::kVictim,
     "SkylakeLutLruVictim"},
    {&SkylakeXeonGold6134, &SkylakeSliceHash, ReplacementKind::kTreePlru,
     LlcInclusionPolicy::kInclusive, "SkylakeLutPlruInclusive"},
    {&SkylakeXeonGold6134, &SkylakeSliceHash, ReplacementKind::kTreePlru,
     LlcInclusionPolicy::kVictim, "SkylakeLutPlruVictim"},
    {&SkylakeXeonGold6134, &SkylakeSliceHash, ReplacementKind::kRandom,
     LlcInclusionPolicy::kInclusive, "SkylakeLutRandomInclusive"},
    {&SkylakeXeonGold6134, &SkylakeSliceHash, ReplacementKind::kRandom,
     LlcInclusionPolicy::kVictim, "SkylakeLutRandomVictim"},
    {&SandyBridgeXeonQuad, &SandyBridgeSliceHash, ReplacementKind::kLru,
     LlcInclusionPolicy::kInclusive, "SandyBridgeXorLruInclusive"},
    {&SandyBridgeXeonQuad, &SandyBridgeSliceHash, ReplacementKind::kTreePlru,
     LlcInclusionPolicy::kVictim, "SandyBridgeXorPlruVictim"},
    {&SandyBridgeXeonQuad, &SandyBridgeSliceHash, ReplacementKind::kRandom,
     LlcInclusionPolicy::kInclusive, "SandyBridgeXorRandomInclusive"},
};

INSTANTIATE_TEST_SUITE_P(Matrix, KernelEquivalenceTest, ::testing::ValuesIn(kCases), CaseName);

// The modulo hash (idealised baseline) keys its own kernel column.
std::shared_ptr<const SliceHash> HaswellModuloHash() {
  return std::make_shared<ModuloSliceHash>(8);
}

constexpr KernelCase kModuloCases[] = {
    {&HaswellXeonE52667V3, &HaswellModuloHash, ReplacementKind::kLru,
     LlcInclusionPolicy::kInclusive, "HaswellModuloLruInclusive"},
    {&HaswellXeonE52667V3, &HaswellModuloHash, ReplacementKind::kTreePlru,
     LlcInclusionPolicy::kVictim, "HaswellModuloPlruVictim"},
};

INSTANTIATE_TEST_SUITE_P(Modulo, KernelEquivalenceTest, ::testing::ValuesIn(kModuloCases),
                         CaseName);

// An unrecognised SliceHash subclass seals as kVirtual: outside the matrix,
// so kAuto must fall back to the generic path — and still simulate.
class OpaqueHash final : public SliceHash {
 public:
  explicit OpaqueHash(std::size_t slices) : slices_(slices) {}
  std::size_t num_slices() const override { return slices_; }
  SliceId SliceFor(PhysAddr addr) const override {
    return static_cast<SliceId>(((addr >> kCacheLineBits) ^ (addr >> 17)) % slices_);
  }

 private:
  std::size_t slices_;
};

TEST(KernelFallbackTest, UnrecognisedHashRunsGenericPath) {
  MachineSpec spec = WithSmallLlc(HaswellXeonE52667V3());
  auto hash = std::make_shared<OpaqueHash>(spec.num_slices);
  MemoryHierarchy h(spec, hash, /*seed=*/3);
  EXPECT_FALSE(h.uses_specialized_kernel());
  EXPECT_STREQ(h.kernel_name(), "generic");
  // Still simulates: drive some traffic through every entry-point family.
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    const PhysAddr addr = (PhysAddr{1} << 28) + rng.UniformIndex(1 << 22);
    h.Read(0, addr);
    h.Write(1, addr + 64);
    h.ReadRange(0, addr, 256);
    h.DmaWriteRange(addr, 512);
    h.DmaReadRange(addr, 512);
  }
  EXPECT_GT(h.stats().l1_hits + h.stats().l1_misses, 0u);
}

TEST(KernelSelectionTest, PresetsSelectTheExpectedKernel) {
#ifdef CACHEDIR_GENERIC_ONLY
  GTEST_SKIP() << "specialized kernels compiled out";
#endif
  {
    MemoryHierarchy h(HaswellXeonE52667V3(), HaswellSliceHash());
    EXPECT_TRUE(h.uses_specialized_kernel());
    EXPECT_STREQ(h.kernel_name(), "xor+lru+inclusive");
  }
  {
    MemoryHierarchy h(SkylakeXeonGold6134(), SkylakeSliceHash());
    EXPECT_TRUE(h.uses_specialized_kernel());
    EXPECT_STREQ(h.kernel_name(), "xorlut+lru+victim");
  }
  {
    MachineSpec spec = SandyBridgeXeonQuad();
    spec.replacement = ReplacementKind::kTreePlru;
    MemoryHierarchy h(spec, SandyBridgeSliceHash());
    EXPECT_TRUE(h.uses_specialized_kernel());
    EXPECT_STREQ(h.kernel_name(), "xor+plru+inclusive");
  }
  {
    MachineSpec spec = HaswellXeonE52667V3();
    spec.kernel_mode = HierarchyKernelMode::kGeneric;
    MemoryHierarchy h(spec, HaswellSliceHash());
    EXPECT_FALSE(h.uses_specialized_kernel());
    EXPECT_STREQ(h.kernel_name(), "generic");
  }
}

}  // namespace
}  // namespace cachedir
