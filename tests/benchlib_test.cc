// Tests for the shared bench-harness library: the access-time experiment
// must reproduce the exact model latencies, the random-access driver must
// be deterministic, and the NFV experiment driver must aggregate the way
// the paper reports (medians of runs).
#include <gtest/gtest.h>

#include "bench/access_time.h"
#include "bench/nfv_experiment.h"
#include "bench/random_access.h"
#include "src/hash/presets.h"
#include "src/mem/hugepage.h"
#include "src/sim/machine.h"

namespace cachedir {
namespace {

TEST(AccessTimeExperiment, HaswellReadsMatchModelExactly) {
  const MachineSpec spec = HaswellXeonE52667V3();
  const AccessTimeResult r = MeasureSliceAccessTimes(spec, HaswellSliceHash(), 0, 50);
  ASSERT_EQ(r.read_cycles.size(), 8u);
  for (SliceId s = 0; s < 8; ++s) {
    const double expected = static_cast<double>(spec.latency.llc_base +
                                                spec.interconnect->SlicePenalty(0, s));
    EXPECT_DOUBLE_EQ(r.read_cycles[s], expected) << "slice " << s;
    EXPECT_DOUBLE_EQ(r.write_cycles[s], static_cast<double>(spec.latency.store_commit));
  }
}

TEST(AccessTimeExperiment, WorksFromEveryCore) {
  const MachineSpec spec = HaswellXeonE52667V3();
  for (CoreId core = 0; core < 8; core += 3) {
    const AccessTimeResult r = MeasureSliceAccessTimes(spec, HaswellSliceHash(), core, 10);
    // The core's own slice is its minimum.
    const double own = r.read_cycles[core];
    for (SliceId s = 0; s < 8; ++s) {
      EXPECT_GE(r.read_cycles[s], own);
    }
  }
}

TEST(AccessTimeExperiment, SkylakeUsesVictimPathCorrectly) {
  const MachineSpec spec = SkylakeXeonGold6134();
  const AccessTimeResult r = MeasureSliceAccessTimes(spec, SkylakeSliceHash(), 0, 20);
  // Slice 0 is core 0's primary: exactly the base LLC latency.
  EXPECT_DOUBLE_EQ(r.read_cycles[0], static_cast<double>(spec.latency.llc_base));
  // Every slice measured (no zero rows).
  for (SliceId s = 0; s < 18; ++s) {
    EXPECT_GT(r.read_cycles[s], 0.0) << "slice " << s;
  }
}

TEST(RandomAccessDriver, DeterministicAndWarmupRespected) {
  const auto run = [] {
    MemoryHierarchy h(HaswellXeonE52667V3(), HaswellSliceHash(), 3);
    HugepageAllocator backing;
    const ContiguousBuffer buf(backing.Allocate(1u << 20, PageSize::k2M).pa, 1u << 20);
    RandomAccessParams params;
    params.ops = 5000;
    params.seed = 17;
    return RunRandomAccess(h, buf, 0, params);
  };
  EXPECT_EQ(run(), run());

  // Without warm-up the same workload must cost strictly more (cold misses).
  MemoryHierarchy h(HaswellXeonE52667V3(), HaswellSliceHash(), 3);
  HugepageAllocator backing;
  const ContiguousBuffer buf(backing.Allocate(1u << 20, PageSize::k2M).pa, 1u << 20);
  RandomAccessParams cold;
  cold.ops = 5000;
  cold.seed = 17;
  cold.warmup_lines_cap = 0;
  EXPECT_GT(RunRandomAccess(h, buf, 0, cold), run());
}

TEST(RandomAccessDriver, MultiCoreRunsEveryCoreToQuota) {
  MemoryHierarchy h(HaswellXeonE52667V3(), HaswellSliceHash(), 5);
  HugepageAllocator backing;
  std::vector<std::unique_ptr<MemoryBuffer>> owned;
  std::vector<const MemoryBuffer*> buffers;
  for (int i = 0; i < 8; ++i) {
    owned.push_back(std::make_unique<ContiguousBuffer>(
        backing.Allocate(256u << 10, PageSize::k2M).pa, 256u << 10));
    buffers.push_back(owned.back().get());
  }
  RandomAccessParams params;
  params.ops = 2000;
  const auto cycles = RunRandomAccessMultiCore(h, buffers, params);
  ASSERT_EQ(cycles.size(), 8u);
  for (const Cycles c : cycles) {
    EXPECT_GT(c, 2000u * 4);  // at least L1-hit cost per op
  }
}

TEST(NfvExperimentDriver, SkylakeMachineOptionRunsTheChain) {
  NfvExperiment e;
  e.app = NfvExperiment::App::kRouterNaptLb;
  e.machine = NfvExperiment::Machine::kSkylake;
  e.cache_director = true;
  e.steering = NicSteering::kFlowDirector;
  e.hw_offload_router = true;
  e.traffic.rate_gbps = 30.0;
  e.warmup_packets = 500;
  e.measured_packets = 3000;
  const NfvRunStats a = RunNfvOnce(e, 0);
  const NfvRunStats b = RunNfvOnce(e, 0);
  EXPECT_GT(a.delivered, 0u);
  EXPECT_DOUBLE_EQ(a.latency_us.p99, b.latency_us.p99);  // deterministic
  // Skylake and Haswell are genuinely different machines: same experiment,
  // different numbers.
  NfvExperiment h = e;
  h.machine = NfvExperiment::Machine::kHaswell;
  const NfvRunStats hs = RunNfvOnce(h, 0);
  EXPECT_NE(a.latency_us.mean, hs.latency_us.mean);
}

TEST(NfvExperimentDriver, DeterministicPerRunIndexAndAggregates) {
  NfvExperiment e;
  e.app = NfvExperiment::App::kForwarding;
  e.traffic.rate_gbps = 20.0;
  e.measured_packets = 3000;
  e.warmup_packets = 500;
  e.num_runs = 5;
  const NfvRunStats a = RunNfvOnce(e, 2);
  const NfvRunStats b = RunNfvOnce(e, 2);
  EXPECT_DOUBLE_EQ(a.latency_us.p99, b.latency_us.p99);
  EXPECT_EQ(a.delivered, b.delivered);

  const NfvAggregate agg = RunNfvMany(e);
  EXPECT_EQ(agg.p99_per_run.size(), 5u);
  EXPECT_EQ(agg.total_delivered, 5u * 3000u);
  // Median of per-run p99s is bracketed by the per-run extremes.
  EXPECT_GE(agg.median.p99, agg.p99_per_run.Min());
  EXPECT_LE(agg.median.p99, agg.p99_per_run.Max());
  // Pooled samples hold every delivered packet.
  EXPECT_EQ(agg.pooled_latencies_us.size(), agg.total_delivered);
}

}  // namespace
}  // namespace cachedir
