// Unit tests for the set-associative cache array, replacement policies, and
// the sliced LLC (CAT + DDIO way partitions).
#include <gtest/gtest.h>

#include <optional>
#include <set>
#include <stdexcept>

#include "src/cache/replacement.h"
#include "src/cache/set_assoc_cache.h"
#include "src/cache/sliced_llc.h"
#include "src/hash/presets.h"

namespace cachedir {
namespace {

PhysAddr AddrForSet(std::size_t set, std::size_t num_sets, std::size_t tag) {
  return (tag * num_sets + set) * kCacheLineSize;
}

SetAssocCache MakeCache(std::size_t sets, std::size_t ways,
                        ReplacementKind kind = ReplacementKind::kLru) {
  SetAssocCache::Config c;
  c.num_sets = sets;
  c.num_ways = ways;
  c.replacement = kind;
  return SetAssocCache(c);
}

TEST(SetAssocCacheTest, RejectsInvalidGeometry) {
  SetAssocCache::Config c;
  c.num_sets = 3;  // not a power of two
  c.num_ways = 4;
  EXPECT_THROW(SetAssocCache{c}, std::invalid_argument);
  c.num_sets = 4;
  c.num_ways = 0;
  EXPECT_THROW(SetAssocCache{c}, std::invalid_argument);
}

TEST(SetAssocCacheTest, InsertThenHit) {
  auto cache = MakeCache(16, 4);
  const PhysAddr a = AddrForSet(3, 16, 7);
  EXPECT_FALSE(cache.Touch(a));
  EXPECT_EQ(cache.Insert(a, false), std::nullopt);
  EXPECT_TRUE(cache.Contains(a));
  EXPECT_TRUE(cache.Touch(a));
  EXPECT_TRUE(cache.Contains(a + 63));  // same line
  EXPECT_FALSE(cache.Contains(a + 64));
}

TEST(SetAssocCacheTest, DoubleInsertThrows) {
  auto cache = MakeCache(16, 4);
  const PhysAddr a = AddrForSet(0, 16, 1);
  (void)cache.Insert(a, false);
  EXPECT_THROW((void)cache.Insert(a, false), std::logic_error);
}

TEST(SetAssocCacheTest, LruEvictsLeastRecentlyUsed) {
  auto cache = MakeCache(4, 2);
  const PhysAddr a = AddrForSet(1, 4, 10);
  const PhysAddr b = AddrForSet(1, 4, 20);
  const PhysAddr c = AddrForSet(1, 4, 30);
  (void)cache.Insert(a, false);
  (void)cache.Insert(b, false);
  EXPECT_TRUE(cache.Touch(a));  // a is now MRU; b is LRU
  const auto evicted = cache.Insert(c, false);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->line, b);
  EXPECT_TRUE(cache.Contains(a));
  EXPECT_TRUE(cache.Contains(c));
}

TEST(SetAssocCacheTest, EvictionReportsDirtiness) {
  auto cache = MakeCache(4, 1);
  const PhysAddr a = AddrForSet(0, 4, 1);
  const PhysAddr b = AddrForSet(0, 4, 2);
  (void)cache.Insert(a, false);
  cache.MarkDirty(a);
  const auto evicted = cache.Insert(b, false);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_TRUE(evicted->dirty);
}

TEST(SetAssocCacheTest, WayMaskRestrictsAllocation) {
  auto cache = MakeCache(4, 4);
  // Fill ways 0-1 only (mask 0b0011) with three lines: third insert must
  // evict inside the partition even though ways 2-3 are free.
  const PhysAddr a = AddrForSet(2, 4, 1);
  const PhysAddr b = AddrForSet(2, 4, 2);
  const PhysAddr c = AddrForSet(2, 4, 3);
  EXPECT_EQ(cache.Insert(a, false, 0b0011), std::nullopt);
  EXPECT_EQ(cache.Insert(b, false, 0b0011), std::nullopt);
  const auto evicted = cache.Insert(c, false, 0b0011);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->line, a);  // LRU inside the partition
}

TEST(SetAssocCacheTest, DisjointMasksDoNotEvictEachOther) {
  auto cache = MakeCache(4, 4);
  const PhysAddr a = AddrForSet(0, 4, 1);
  const PhysAddr b = AddrForSet(0, 4, 2);
  const PhysAddr c = AddrForSet(0, 4, 3);
  (void)cache.Insert(a, false, 0b0011);
  (void)cache.Insert(b, false, 0b0011);
  // Partition {2,3} is empty; this insert must not displace a or b.
  EXPECT_EQ(cache.Insert(c, false, 0b1100), std::nullopt);
  EXPECT_TRUE(cache.Contains(a));
  EXPECT_TRUE(cache.Contains(b));
  EXPECT_TRUE(cache.Contains(c));
}

TEST(SetAssocCacheTest, EmptyMaskThrows) {
  auto cache = MakeCache(4, 4);
  EXPECT_THROW((void)cache.Insert(0, false, 0), std::invalid_argument);
}

TEST(SetAssocCacheTest, InvalidateRemovesLineAndReportsState) {
  auto cache = MakeCache(4, 2);
  const PhysAddr a = AddrForSet(0, 4, 1);
  (void)cache.Insert(a, true);
  const auto r = cache.Invalidate(a);
  EXPECT_TRUE(r.was_present);
  EXPECT_TRUE(r.was_dirty);
  EXPECT_FALSE(cache.Contains(a));
  const auto r2 = cache.Invalidate(a);
  EXPECT_FALSE(r2.was_present);
}

TEST(SetAssocCacheTest, ClearDropsEverything) {
  auto cache = MakeCache(8, 2);
  for (std::size_t i = 0; i < 8; ++i) {
    (void)cache.Insert(AddrForSet(i, 8, 1), false);
  }
  EXPECT_EQ(cache.resident_lines(), 8u);
  cache.Clear();
  EXPECT_EQ(cache.resident_lines(), 0u);
  EXPECT_FALSE(cache.Contains(AddrForSet(0, 8, 1)));
}

TEST(SetAssocCacheTest, CapacityWorkloadKeepsResidentBounded) {
  auto cache = MakeCache(16, 4);
  for (std::size_t tag = 0; tag < 100; ++tag) {
    for (std::size_t set = 0; set < 16; ++set) {
      const PhysAddr a = AddrForSet(set, 16, tag);
      if (!cache.Touch(a)) {
        (void)cache.Insert(a, false);
      }
    }
  }
  EXPECT_EQ(cache.resident_lines(), 16u * 4u);
}

// ---- Replacement policies ----

TEST(ReplacementTest, PlruVictimRespectsMask) {
  ReplacementState repl(ReplacementKind::kTreePlru, 8);
  Rng rng(1);
  for (std::uint32_t w = 0; w < 8; ++w) {
    repl.OnAccess(w);
  }
  // Only way 5 allowed.
  EXPECT_EQ(repl.ChooseVictim(1u << 5, rng), 5u);
}

TEST(ReplacementTest, PlruAvoidsRecentlyTouchedWay) {
  ReplacementState repl(ReplacementKind::kTreePlru, 4);
  Rng rng(1);
  repl.OnAccess(2);
  EXPECT_NE(repl.ChooseVictim(0b1111, rng), 2u);
}

TEST(ReplacementTest, RandomVictimStaysInMask) {
  ReplacementState repl(ReplacementKind::kRandom, 8);
  Rng rng(7);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 200; ++i) {
    const std::uint32_t v = repl.ChooseVictim(0b10110000, rng);
    seen.insert(v);
    EXPECT_TRUE(v == 4 || v == 5 || v == 7);
  }
  EXPECT_EQ(seen.size(), 3u);  // all allowed ways eventually picked
}

TEST(ReplacementTest, LruSequenceIsFifoWithoutTouches) {
  ReplacementState repl(ReplacementKind::kLru, 4);
  Rng rng(1);
  repl.OnAccess(0);
  repl.OnAccess(1);
  repl.OnAccess(2);
  repl.OnAccess(3);
  EXPECT_EQ(repl.ChooseVictim(0b1111, rng), 0u);
  repl.OnAccess(0);
  EXPECT_EQ(repl.ChooseVictim(0b1111, rng), 1u);
}

// ---- Sliced LLC ----

SlicedLlc MakeLlc(std::size_t ddio_ways = 2) {
  SlicedLlc::Config c;
  c.num_sets = 64;
  c.num_ways = 4;
  c.ddio_ways = ddio_ways;
  return SlicedLlc(c, HaswellSliceHash());
}

TEST(SlicedLlcTest, RoutesLinesBySliceHash) {
  auto llc = MakeLlc();
  const auto hash = HaswellSliceHash();
  for (PhysAddr line = 0; line < 64 * 64; line += 64) {
    EXPECT_EQ(llc.SliceOf(line), hash->SliceFor(line));
  }
}

TEST(SlicedLlcTest, LookupRecordsCboEvents) {
  auto llc = MakeLlc();
  const PhysAddr a = 0x4000;
  const SliceId s = llc.SliceOf(a);
  EXPECT_FALSE(llc.LookupAndTouch(a));
  EXPECT_EQ(llc.cbo().events(s).lookups, 1u);
  EXPECT_EQ(llc.cbo().events(s).misses, 1u);
  (void)llc.InsertForCore(0, a, false);
  EXPECT_TRUE(llc.LookupAndTouch(a));
  EXPECT_EQ(llc.cbo().events(s).lookups, 2u);
  EXPECT_EQ(llc.cbo().events(s).misses, 1u);
}

TEST(SlicedLlcTest, DmaFillsRestrictedToDdioWays) {
  auto llc = MakeLlc(/*ddio_ways=*/1);
  // Find several lines in the same slice and the same set: DMA-inserting
  // two of them must evict the first (only one DDIO way).
  const auto hash = HaswellSliceHash();
  std::vector<PhysAddr> lines;
  for (PhysAddr line = 0; lines.size() < 2; line += 64) {
    if (hash->SliceFor(line) == 0 && ((line >> 6) & 63) == 5) {
      lines.push_back(line);
    }
  }
  EXPECT_EQ(llc.InsertForDma(lines[0]), std::nullopt);
  const auto evicted = llc.InsertForDma(lines[1]);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->line, lines[0]);
}

TEST(SlicedLlcTest, CatIsolatesCores) {
  auto llc = MakeLlc();
  llc.SetCosWayMask(1, 0b0011);
  llc.SetCosWayMask(2, 0b1100);
  llc.AssignCoreToCos(0, 1);
  llc.AssignCoreToCos(1, 2);
  EXPECT_EQ(llc.WayMaskForCore(0), 0b0011u);
  EXPECT_EQ(llc.WayMaskForCore(1), 0b1100u);
  EXPECT_EQ(llc.WayMaskForCore(5), 0b1111u);  // unassigned -> COS0 all ways
}

TEST(SlicedLlcTest, RejectsBadCos) {
  auto llc = MakeLlc();
  EXPECT_THROW(llc.SetCosWayMask(99, 1), std::invalid_argument);
  EXPECT_THROW(llc.SetCosWayMask(1, 0), std::invalid_argument);
  EXPECT_THROW(llc.AssignCoreToCos(0, 99), std::invalid_argument);
}

TEST(SlicedLlcTest, RejectsBadDdioWays) {
  SlicedLlc::Config c;
  c.num_sets = 64;
  c.num_ways = 4;
  c.ddio_ways = 5;
  EXPECT_THROW(SlicedLlc(c, HaswellSliceHash()), std::invalid_argument);
}

}  // namespace
}  // namespace cachedir
